#include "auth/verifier.h"

#include <gtest/gtest.h>

#include "auth/gaussian_matrix.h"
#include "common/error.h"
#include "common/rng.h"

namespace mandipass::auth {
namespace {

std::vector<float> random_print(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  return v;
}

TEST(Verifier, AcceptsIdentical) {
  const Verifier v(0.5);
  const auto p = random_print(32, 1);
  const auto d = v.verify(p, p);
  EXPECT_TRUE(d.accepted);
  EXPECT_NEAR(d.distance, 0.0, 1e-9);
}

TEST(Verifier, RejectsOrthogonal) {
  const Verifier v(0.5);
  std::vector<float> a{1.0f, 0.0f};
  std::vector<float> b{0.0f, 1.0f};
  const auto d = v.verify(a, b);
  EXPECT_FALSE(d.accepted);
  EXPECT_NEAR(d.distance, 1.0, 1e-9);
}

TEST(Verifier, ThresholdBoundaryAccepts) {
  const Verifier v(1.0);
  std::vector<float> a{1.0f, 0.0f};
  std::vector<float> b{0.0f, 1.0f};
  EXPECT_TRUE(v.verify(a, b).accepted);  // accept iff distance <= threshold
}

TEST(Verifier, DefaultIsPaperThreshold) {
  const Verifier v;
  EXPECT_DOUBLE_EQ(v.threshold(), kPaperThreshold);
}

TEST(Verifier, SetThresholdValidated) {
  Verifier v;
  v.set_threshold(0.3);
  EXPECT_DOUBLE_EQ(v.threshold(), 0.3);
  EXPECT_THROW(v.set_threshold(-0.1), PreconditionError);
  EXPECT_THROW(v.set_threshold(2.5), PreconditionError);
  EXPECT_THROW(Verifier(3.0), PreconditionError);
}

TEST(Verifier, StoreBackedFlowAcceptsGenuine) {
  TemplateStore store;
  const auto print = random_print(64, 2);
  const std::uint64_t seed = 99;
  const GaussianMatrix g(seed, 64);
  StoredTemplate t;
  t.data = g.transform(print);
  t.matrix_seed = seed;
  store.enroll("alice", t);

  const Verifier v(0.2);
  // Genuine probe: a small perturbation of the enrolled print.
  auto probe = print;
  Rng rng(3);
  for (auto& x : probe) {
    x += static_cast<float>(rng.normal(0.0, 0.01));
  }
  const auto d = v.verify_user(store, "alice", probe);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->accepted);
}

TEST(Verifier, StoreBackedFlowRejectsStranger) {
  TemplateStore store;
  const auto print = random_print(64, 4);
  const std::uint64_t seed = 77;
  const GaussianMatrix g(seed, 64);
  StoredTemplate t;
  t.data = g.transform(print);
  t.matrix_seed = seed;
  store.enroll("alice", t);

  const Verifier v(0.2);
  // A stranger's print: independent zero-mean vector (two uniform [0,1)
  // vectors would share their positive DC component and land at cosine
  // distance ~0.25, which is not what a trained extractor produces for
  // impostors).
  Rng rng(5);
  std::vector<float> stranger(64);
  for (auto& x : stranger) {
    x = static_cast<float>(rng.normal());
  }
  const auto d = v.verify_user(store, "alice", stranger);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->accepted);
}

TEST(Verifier, UnknownUserIsNullopt) {
  TemplateStore store;
  const Verifier v;
  EXPECT_FALSE(v.verify_user(store, "ghost", random_print(8, 6)).has_value());
}

}  // namespace
}  // namespace mandipass::auth

// Bit-identity contract of the coalesced Gaussian-transform path
// (DESIGN.md §15): packing many same-matrix probes into one
// nn::PackedGemm tile must produce, for every probe, exactly the floats
// a lone GaussianMatrix::transform() produces — the kernels share the
// ascending-k accumulation order for every tile shape, so batching is
// purely a bandwidth optimisation. Exercised at batch sizes 1 / 3 / 16 /
// 257 (off the kXTile=4 and kOcBlock=16 grids) and through
// BatchVerifier::verify_coalesced for mixed-seed request sets.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "auth/batch_verifier.h"
#include "auth/gaussian_matrix.h"
#include "common/rng.h"
#include "nn/inference_plan.h"

namespace mandipass::auth {
namespace {

std::vector<float> random_vec(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return v;
}

TEST(GemmCoalescing, RunXMajorIsRunTransposed) {
  // Layout-only contract on PackedGemm itself: run_xmajor(y')[xi][r] must
  // hold bit-for-bit the float run(y)[r][xi] holds, including bias and a
  // non-trivial epilogue, on a deliberately ragged shape (rows and cols
  // off the 16/4 block grids, x_count off the tile grid).
  constexpr std::size_t kRows = 21;
  constexpr std::size_t kCols = 13;
  constexpr std::size_t kCount = 7;
  Rng rng(31);
  const auto w = random_vec(rng, kRows * kCols);
  const auto bias = random_vec(rng, kRows);
  const auto x = random_vec(rng, kCount * kCols);

  nn::PackedGemm gemm;
  gemm.pack_rows(w.data(), bias.data(), kRows, kCols);

  std::vector<float> y_rowmajor(kRows * kCount);
  std::vector<float> y_xmajor(kCount * kRows);
  gemm.run(x.data(), kCount, kCols, y_rowmajor.data(), kCount, nn::Epilogue::Relu);
  gemm.run_xmajor(x.data(), kCount, kCols, y_xmajor.data(), kRows, nn::Epilogue::Relu);

  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t xi = 0; xi < kCount; ++xi) {
      EXPECT_EQ(y_rowmajor[r * kCount + xi], y_xmajor[xi * kRows + r])
          << "r=" << r << " xi=" << xi;
    }
  }
}

TEST(GemmCoalescing, TransformBatchBitIdenticalAtEveryBatchSize) {
  constexpr std::size_t kDim = 48;
  const GaussianMatrix g(0xBEEF, kDim);
  for (const std::size_t count : {std::size_t{1}, std::size_t{3}, std::size_t{16},
                                  std::size_t{257}}) {
    Rng rng(0x40 + count);
    std::vector<float> xs(count * kDim);
    for (float& v : xs) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    std::vector<float> out(count * kDim);
    g.transform_batch(xs, count, out);
    for (std::size_t i = 0; i < count; ++i) {
      const std::span<const float> probe(xs.data() + i * kDim, kDim);
      const auto lone = g.transform(probe);
      for (std::size_t j = 0; j < kDim; ++j) {
        ASSERT_EQ(out[i * kDim + j], lone[j]) << "count=" << count << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(GemmCoalescing, CoalescedVerifyMatchesPerRequestAcrossMixedSeeds) {
  constexpr std::size_t kDim = 32;
  BatchVerifier engine;
  Rng rng(33);
  std::vector<VerifyRequest> requests;
  // 12 users over 3 shared seeds (coalescable groups of 4) plus one user
  // on a seed of his own (a singleton group).
  for (std::size_t u = 0; u < 12; ++u) {
    std::vector<float> print(kDim);
    for (float& x : print) {
      x = static_cast<float>(rng.uniform());
    }
    const std::uint64_t seed = 600 + u % 3;
    const GaussianMatrix g(seed, kDim);
    StoredTemplate tmpl;
    tmpl.data = g.transform(print);
    tmpl.matrix_seed = seed;
    tmpl.key_version = static_cast<std::uint32_t>(u);
    engine.enroll("user" + std::to_string(u), std::move(tmpl));
    auto probe = print;
    probe[u % kDim] += 0.05f;
    requests.push_back({"user" + std::to_string(u), std::move(probe)});
  }
  {
    std::vector<float> loner(kDim, 0.25f);
    const GaussianMatrix g(999, kDim);
    StoredTemplate tmpl;
    tmpl.data = g.transform(loner);
    tmpl.matrix_seed = 999;
    tmpl.key_version = 12;
    engine.enroll("loner", std::move(tmpl));
    requests.push_back({"loner", std::move(loner)});
  }

  std::vector<std::size_t> indices(requests.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i;
  }
  std::vector<BatchDecision> decisions(requests.size());
  const CoalesceStats cs = engine.verify_coalesced(requests, indices, decisions);
  EXPECT_EQ(cs.groups, 4u);       // 3 shared seeds + the loner
  EXPECT_EQ(cs.coalesced, 12u);   // the three groups of four
  EXPECT_EQ(cs.singletons, 1u);   // the loner

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const BatchDecision want = engine.verify_one(requests[i].user, requests[i].raw_probe);
    EXPECT_EQ(decisions[i].known, want.known) << i;
    EXPECT_EQ(decisions[i].status, want.status) << i;
    EXPECT_EQ(decisions[i].key_version, want.key_version) << i;
    EXPECT_EQ(decisions[i].decision.accepted, want.decision.accepted) << i;
    EXPECT_EQ(decisions[i].decision.distance, want.decision.distance) << i;
  }
}

TEST(GemmCoalescing, CoalescedPathIsTotalAndWritesOnlyItsIndices) {
  constexpr std::size_t kDim = 16;
  BatchVerifier engine;
  std::vector<float> print(kDim, 0.5f);
  const GaussianMatrix g(7, kDim);
  StoredTemplate tmpl;
  tmpl.data = g.transform(print);
  tmpl.matrix_seed = 7;
  tmpl.key_version = 1;
  engine.enroll("alice", std::move(tmpl));

  std::vector<VerifyRequest> requests;
  requests.push_back({"alice", print});            // 0: Accepted
  requests.push_back({"ghost", print});            // 1: Unknown
  requests.push_back({"alice", {}});               // 2: Invalid (empty)
  std::vector<float> nan_probe = print;
  nan_probe[3] = std::numeric_limits<float>::quiet_NaN();
  requests.push_back({"alice", std::move(nan_probe)});  // 3: Invalid (non-finite)
  requests.push_back({"alice", {1.0f, 2.0f}});     // 4: Invalid (wrong dim)
  requests.push_back({"alice", print});            // 5: NOT in indices

  std::vector<BatchDecision> decisions(requests.size());
  decisions[5].key_version = 77;  // sentinel: slot 5 must stay untouched
  const std::vector<std::size_t> indices = {0, 1, 2, 3, 4};
  CoalesceStats cs;
  EXPECT_NO_THROW(cs = engine.verify_coalesced(requests, indices, decisions));
  EXPECT_EQ(cs.groups, 1u);
  EXPECT_EQ(cs.singletons, 1u);

  EXPECT_EQ(decisions[0].status, BatchStatus::Accepted);
  EXPECT_EQ(decisions[1].status, BatchStatus::Unknown);
  EXPECT_EQ(decisions[1].reason, common::ErrorCode::UnknownUser);
  EXPECT_EQ(decisions[2].status, BatchStatus::Invalid);
  EXPECT_EQ(decisions[2].reason, common::ErrorCode::InvalidInput);
  EXPECT_EQ(decisions[3].status, BatchStatus::Invalid);
  EXPECT_EQ(decisions[3].reason, common::ErrorCode::NonFiniteSample);
  EXPECT_EQ(decisions[4].status, BatchStatus::Invalid);
  EXPECT_EQ(decisions[4].reason, common::ErrorCode::DimensionMismatch);
  EXPECT_EQ(decisions[5].key_version, 77u);  // untouched

  // Empty index set: a no-op that touches nothing.
  decisions[0].key_version = 88;
  const CoalesceStats none = engine.verify_coalesced(requests, {}, decisions);
  EXPECT_EQ(none.groups, 0u);
  EXPECT_EQ(decisions[0].key_version, 88u);
}

// Duplicate ids inside one coalesced group: all copies resolve against
// the single snapshot, so their distances are bit-identical and ordered
// by request index (regression companion to the router-level test in
// test_sharded_verifier.cpp).
TEST(GemmCoalescing, DuplicateUsersShareOneSnapshotInOneGroup) {
  constexpr std::size_t kDim = 16;
  BatchVerifier engine;
  std::vector<float> print(kDim, 0.3f);
  const GaussianMatrix g(42, kDim);
  StoredTemplate tmpl;
  tmpl.data = g.transform(print);
  tmpl.matrix_seed = 42;
  tmpl.key_version = 9;
  engine.enroll("dup", std::move(tmpl));

  std::vector<VerifyRequest> requests;
  for (std::size_t i = 0; i < 11; ++i) {
    requests.push_back({"dup", print});
  }
  std::vector<std::size_t> indices(requests.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i;
  }
  std::vector<BatchDecision> decisions(requests.size());
  const CoalesceStats cs = engine.verify_coalesced(requests, indices, decisions);
  EXPECT_EQ(cs.groups, 1u);
  EXPECT_EQ(cs.coalesced, 11u);
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    ASSERT_TRUE(decisions[i].known) << i;
    EXPECT_EQ(decisions[i].key_version, 9u);
    EXPECT_EQ(decisions[i].decision.distance, decisions[0].decision.distance);
    EXPECT_TRUE(decisions[i].decision.accepted);
  }
}

// Regression (PR 9 satellite): a coalesced group must stay total when
// some members carry invalid embedding dimensions — each bad request
// gets its own typed decision and the valid members of the same seed are
// still served bit-identically, instead of one bad probe aborting the
// whole (seed, dim) group on a transform precondition. Mixes two
// embedding widths on ONE shared seed so the grouping logic has to keep
// them apart per-request.
TEST(GemmCoalescing, MixedValidInvalidDimensionsPropagatePerRequest) {
  constexpr std::uint64_t kSeed = 500;
  BatchVerifier engine;
  const auto enroll = [&](const std::string& user, std::size_t dim, float fill,
                          std::uint32_t version) {
    std::vector<float> print(dim, fill);
    const GaussianMatrix g(kSeed, dim);
    StoredTemplate tmpl;
    tmpl.data = g.transform(print);
    tmpl.matrix_seed = kSeed;
    tmpl.key_version = version;
    engine.enroll(user, std::move(tmpl));
    return print;
  };
  const auto alice_print = enroll("alice", 32, 0.4f, 1);
  const auto bob_print = enroll("bob", 32, -0.2f, 2);
  const auto carol_print = enroll("carol", 16, 0.7f, 3);

  std::vector<VerifyRequest> requests;
  requests.push_back({"alice", alice_print});                    // 0: valid, dim 32
  requests.push_back({"bob", std::vector<float>(16, 0.1f)});     // 1: wrong dim for bob
  requests.push_back({"carol", carol_print});                    // 2: valid, dim 16
  requests.push_back({"alice", {}});                             // 3: empty
  std::vector<float> nan_probe = bob_print;
  nan_probe[5] = std::numeric_limits<float>::quiet_NaN();
  requests.push_back({"bob", std::move(nan_probe)});             // 4: non-finite
  requests.push_back({"bob", bob_print});                        // 5: valid, dim 32

  std::vector<std::size_t> indices(requests.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i;
  }
  std::vector<BatchDecision> decisions(requests.size());
  CoalesceStats cs;
  EXPECT_NO_THROW(cs = engine.verify_coalesced(requests, indices, decisions));
  // Two live tiles: (500, 32) with alice+bob, (500, 16) with carol.
  EXPECT_EQ(cs.groups, 2u);
  EXPECT_EQ(cs.coalesced, 2u);
  EXPECT_EQ(cs.singletons, 1u);

  EXPECT_EQ(decisions[0].status, BatchStatus::Accepted);
  EXPECT_EQ(decisions[1].status, BatchStatus::Invalid);
  EXPECT_EQ(decisions[1].reason, common::ErrorCode::DimensionMismatch);
  EXPECT_EQ(decisions[2].status, BatchStatus::Accepted);
  EXPECT_EQ(decisions[3].status, BatchStatus::Invalid);
  EXPECT_EQ(decisions[3].reason, common::ErrorCode::InvalidInput);
  EXPECT_EQ(decisions[4].status, BatchStatus::Invalid);
  EXPECT_EQ(decisions[4].reason, common::ErrorCode::NonFiniteSample);
  EXPECT_EQ(decisions[5].status, BatchStatus::Accepted);

  // The valid members are bit-identical to the per-request path — the
  // invalid neighbours changed nothing about their tiles.
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{5}}) {
    const BatchDecision want = engine.verify_one(requests[i].user, requests[i].raw_probe);
    EXPECT_EQ(decisions[i].key_version, want.key_version) << i;
    EXPECT_EQ(decisions[i].decision.accepted, want.decision.accepted) << i;
    EXPECT_EQ(decisions[i].decision.distance, want.decision.distance) << i;
    EXPECT_FALSE(decisions[i].degraded) << i;
  }
}

// Deadline short-circuit: an already-expired budget turns every indexed
// request into a typed Expired decision without touching locks or GEMM.
TEST(GemmCoalescing, ExpiredDeadlineShortCircuitsBeforeGemm) {
  constexpr std::size_t kDim = 16;
  BatchVerifier engine;
  std::vector<float> print(kDim, 0.5f);
  const GaussianMatrix g(7, kDim);
  StoredTemplate tmpl;
  tmpl.data = g.transform(print);
  tmpl.matrix_seed = 7;
  tmpl.key_version = 1;
  engine.enroll("alice", std::move(tmpl));

  common::VirtualClock clock;
  const auto deadline = common::Deadline::after_us(100, &clock);
  clock.advance_us(101);

  std::vector<VerifyRequest> requests;
  requests.push_back({"alice", print});
  requests.push_back({"ghost", print});
  const std::vector<std::size_t> indices = {0, 1};
  std::vector<BatchDecision> decisions(requests.size());
  const CoalesceStats cs = engine.verify_coalesced(requests, indices, decisions, deadline);
  EXPECT_EQ(cs.groups, 0u);
  for (const BatchDecision& d : decisions) {
    EXPECT_EQ(d.status, BatchStatus::Expired);
    EXPECT_EQ(d.reason, common::ErrorCode::DeadlineExceeded);
    EXPECT_FALSE(d.known);
  }
  // An unlimited (default) deadline serves normally.
  const CoalesceStats healthy = engine.verify_coalesced(requests, indices, decisions);
  EXPECT_EQ(healthy.groups, 1u);
  EXPECT_EQ(decisions[0].status, BatchStatus::Accepted);
  EXPECT_EQ(decisions[1].status, BatchStatus::Unknown);
}

}  // namespace
}  // namespace mandipass::auth

// Circuit-breaker state machine under the deterministic virtual clock
// (DESIGN.md §17): closed→open on the consecutive-failure threshold,
// half-open probe admission and its success/failure outcomes, and
// thread-count invariance of the trip counter — the property that lets
// bench_chaos gate breaker transitions exactly.
#include "auth/resilience/circuit_breaker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/deadline.h"

namespace mandipass::auth::resilience {
namespace {

CircuitBreakerConfig config(int threshold, std::int64_t open_us, int probes = 1) {
  CircuitBreakerConfig c;
  c.failure_threshold = threshold;
  c.open_duration_us = open_us;
  c.half_open_probes = probes;
  return c;
}

TEST(CircuitBreaker, ClosedUntilConsecutiveFailuresReachThreshold) {
  common::VirtualClock clock;
  CircuitBreaker breaker(config(3, 1000), &clock);
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_FALSE(breaker.engaged());
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();  // third consecutive: trips
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_TRUE(breaker.engaged());
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow());
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveRun) {
  common::VirtualClock clock;
  CircuitBreaker breaker(config(3, 1000), &clock);
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_success();  // run broken
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreaker, OpenRejectsUntilCooldownThenAdmitsOneProbe) {
  common::VirtualClock clock;
  CircuitBreaker breaker(config(1, 1000), &clock);
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_FALSE(breaker.allow());
  clock.advance_us(999);
  EXPECT_FALSE(breaker.allow());
  // state() is a pure view: still reports Open until a caller probes.
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  clock.advance_us(1);
  EXPECT_TRUE(breaker.allow());  // this call IS the half-open probe
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  EXPECT_FALSE(breaker.allow());  // probe budget (1) already admitted
}

TEST(CircuitBreaker, HalfOpenProbeSuccessCloses) {
  common::VirtualClock clock;
  CircuitBreaker breaker(config(1, 1000), &clock);
  breaker.record_failure();
  clock.advance_us(1000);
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_FALSE(breaker.engaged());
  EXPECT_EQ(breaker.closes(), 1u);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopensAndRestartsCooldown) {
  common::VirtualClock clock;
  CircuitBreaker breaker(config(1, 1000), &clock);
  breaker.record_failure();
  clock.advance_us(1000);
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();  // probe failed
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_EQ(breaker.closes(), 0u);
  // Cooldown restarted at the re-trip instant.
  clock.advance_us(999);
  EXPECT_FALSE(breaker.allow());
  clock.advance_us(1);
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, MultipleProbesMustAllSucceedToClose) {
  common::VirtualClock clock;
  CircuitBreaker breaker(config(1, 1000, /*probes=*/2), &clock);
  breaker.record_failure();
  clock.advance_us(1000);
  EXPECT_TRUE(breaker.allow());   // probe 1
  EXPECT_TRUE(breaker.allow());   // probe 2
  EXPECT_FALSE(breaker.allow());  // budget spent
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);  // one of two
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.closes(), 1u);
}

// The invariance bench_chaos relies on: N threads hammering
// record_failure trip the breaker exactly once, because failures while
// Open are inert. Checked for several thread counts.
TEST(CircuitBreaker, TripCountIsThreadCountInvariant) {
  for (const unsigned n_threads : {1u, 2u, 4u, 8u}) {
    common::VirtualClock clock;
    CircuitBreaker breaker(config(5, 1'000'000), &clock);
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) {
      threads.emplace_back([&breaker] {
        for (int i = 0; i < 100; ++i) {
          breaker.record_failure();
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_EQ(breaker.trips(), 1u) << n_threads << " threads";
    EXPECT_EQ(breaker.state(), BreakerState::Open) << n_threads << " threads";
    EXPECT_FALSE(breaker.allow()) << n_threads << " threads";
  }
}

TEST(CircuitBreaker, StateNamesAreStable) {
  EXPECT_STREQ(breaker_state_name(BreakerState::Closed), "closed");
  EXPECT_STREQ(breaker_state_name(BreakerState::Open), "open");
  EXPECT_STREQ(breaker_state_name(BreakerState::HalfOpen), "half_open");
}

}  // namespace
}  // namespace mandipass::auth::resilience

#include "auth/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::auth {
namespace {

TEST(Metrics, FrrCountsRejectionsAboveThreshold) {
  const std::vector<double> genuine{0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(frr_at(genuine, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(frr_at(genuine, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(frr_at(genuine, 0.5), 0.0);
}

TEST(Metrics, FarCountsAcceptancesAtOrBelowThreshold) {
  const std::vector<double> impostor{0.5, 0.6, 0.7, 0.8};
  EXPECT_DOUBLE_EQ(far_at(impostor, 0.65), 0.5);
  EXPECT_DOUBLE_EQ(far_at(impostor, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(far_at(impostor, 0.9), 1.0);
}

TEST(Metrics, VsrIsComplementOfFrr) {
  const std::vector<double> genuine{0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(vsr_at(genuine, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(vsr_at(genuine, 0.25) + frr_at(genuine, 0.25), 1.0);
}

TEST(Metrics, EerPerfectSeparation) {
  const std::vector<double> genuine{0.1, 0.15, 0.2};
  const std::vector<double> impostor{0.8, 0.85, 0.9};
  const auto r = compute_eer(genuine, impostor);
  EXPECT_NEAR(r.eer, 0.0, 1e-9);
  // The crossing lands anywhere in the empty gap between the samples.
  EXPECT_GE(r.threshold, 0.2);
  EXPECT_LT(r.threshold, 0.9);
}

TEST(Metrics, EerTotalOverlapIsHalf) {
  // Identical distributions: FAR(t) + FRR(t) = 1 at every t, EER = 0.5.
  const std::vector<double> same{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  const auto r = compute_eer(same, same);
  EXPECT_NEAR(r.eer, 0.5, 0.07);
}

TEST(Metrics, EerPartialOverlapBetweenZeroAndHalf) {
  Rng rng(1);
  std::vector<double> genuine;
  std::vector<double> impostor;
  for (int i = 0; i < 5000; ++i) {
    genuine.push_back(rng.normal(0.3, 0.1));
    impostor.push_back(rng.normal(0.7, 0.1));
  }
  const auto r = compute_eer(genuine, impostor);
  // Two unit-variance-scaled normals 4 sigma apart: EER = Phi(-2) ~ 2.3%.
  EXPECT_NEAR(r.eer, 0.0228, 0.006);
  EXPECT_NEAR(r.threshold, 0.5, 0.02);
}

TEST(Metrics, EerThresholdBalancesErrors) {
  Rng rng(2);
  std::vector<double> genuine;
  std::vector<double> impostor;
  for (int i = 0; i < 3000; ++i) {
    genuine.push_back(rng.normal(0.25, 0.08));
    impostor.push_back(rng.normal(0.6, 0.12));
  }
  const auto r = compute_eer(genuine, impostor);
  EXPECT_NEAR(far_at(impostor, r.threshold), frr_at(genuine, r.threshold), 0.01);
}

TEST(Metrics, RocCurveShapeAndMonotonicity) {
  Rng rng(3);
  std::vector<double> genuine;
  std::vector<double> impostor;
  for (int i = 0; i < 1000; ++i) {
    genuine.push_back(rng.normal(0.3, 0.1));
    impostor.push_back(rng.normal(0.7, 0.1));
  }
  const auto curve = roc_curve(genuine, impostor, 0.0, 1.0, 50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].far, curve[i - 1].far);   // FAR non-decreasing in t
    EXPECT_LE(curve[i].frr, curve[i - 1].frr);   // FRR non-increasing in t
  }
  EXPECT_DOUBLE_EQ(curve.front().far, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().frr, 0.0);
}

TEST(Metrics, EmptyInputsThrow) {
  const std::vector<double> some{0.5};
  EXPECT_THROW(frr_at({}, 0.5), PreconditionError);
  EXPECT_THROW(far_at({}, 0.5), PreconditionError);
  EXPECT_THROW(compute_eer({}, some), PreconditionError);
  EXPECT_THROW(compute_eer(some, {}), PreconditionError);
}

TEST(Metrics, RocInvalidArgsThrow) {
  const std::vector<double> some{0.5};
  EXPECT_THROW(roc_curve(some, some, 0.0, 1.0, 1), PreconditionError);
  EXPECT_THROW(roc_curve(some, some, 1.0, 0.0, 10), PreconditionError);
}

TEST(Metrics, PaperConstants) {
  EXPECT_DOUBLE_EQ(kPaperThreshold, 0.5485);
  EXPECT_DOUBLE_EQ(kPaperEer, 0.0128);
}

}  // namespace
}  // namespace mandipass::auth

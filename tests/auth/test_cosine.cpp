#include "auth/cosine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::auth {
namespace {

TEST(Cosine, IdenticalVectorsSimilarityOne) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  EXPECT_NEAR(cosine_similarity(a, a), 1.0, 1e-12);
  EXPECT_NEAR(cosine_distance(a, a), 0.0, 1e-12);
}

TEST(Cosine, OppositeVectorsDistanceTwo) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{-1.0f, 0.0f};
  EXPECT_NEAR(cosine_distance(a, b), 2.0, 1e-12);
}

TEST(Cosine, OrthogonalVectorsDistanceOne) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{0.0f, 1.0f};
  EXPECT_NEAR(cosine_distance(a, b), 1.0, 1e-12);
}

TEST(Cosine, ScaleInvariant) {
  const std::vector<float> a{1.0f, 2.0f, -1.0f};
  const std::vector<float> b{3.0f, 6.0f, -3.0f};
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-6);
}

TEST(Cosine, ZeroVectorGivesZeroSimilarity) {
  const std::vector<float> a{0.0f, 0.0f};
  const std::vector<float> b{1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(Cosine, KnownAngle) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{1.0f, 1.0f};
  EXPECT_NEAR(cosine_similarity(a, b), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(Cosine, BoundsOnRandomVectors) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<float> a(32);
    std::vector<float> b(32);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<float>(rng.normal());
      b[i] = static_cast<float>(rng.normal());
    }
    const double d = cosine_distance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 2.0);
  }
}

TEST(Cosine, ZeroNormEitherSideIsDefinedReject) {
  // A degenerate (all-zero) embedding must map to a defined reject-side
  // distance, never NaN: distance 1.0 sits past every operating threshold
  // the paper considers (0.33–0.55).
  const std::vector<float> zero{0.0f, 0.0f, 0.0f};
  const std::vector<float> probe{0.5f, -1.0f, 2.0f};
  for (const auto& [a, b] : {std::pair{zero, probe}, std::pair{probe, zero},
                             std::pair{zero, zero}}) {
    const double d = cosine_distance(a, b);
    EXPECT_FALSE(std::isnan(d));
    EXPECT_DOUBLE_EQ(d, 1.0);
  }
}

TEST(Cosine, PropertySymmetryAndRange) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> a(16);
    std::vector<float> b(16);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<float>(rng.normal(0.0, trial % 5 == 0 ? 1e4 : 1.0));
      b[i] = static_cast<float>(rng.normal(0.0, 1.0));
    }
    if (trial % 7 == 0) {
      b = a;  // exercise the near-parallel clamp branch
    }
    const double ab = cosine_distance(a, b);
    const double ba = cosine_distance(b, a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 2.0);
  }
}

TEST(Cosine, ParallelVectorsClampInsideRange) {
  // Large parallel vectors can push |cos| a few ulps past 1 without the
  // clamp; distance must stay within [0, 2] exactly.
  std::vector<float> a(64);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(i) * 1e3f + 1.0f;
  }
  std::vector<float> b(a);
  for (auto& v : b) {
    v *= 3.0f;
  }
  const double d = cosine_distance(a, b);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 2.0);
  const double opposite = cosine_distance(a, [&] {
    std::vector<float> neg(a);
    for (auto& v : neg) {
      v = -v;
    }
    return neg;
  }());
  EXPECT_GE(opposite, 0.0);
  EXPECT_LE(opposite, 2.0);
}

TEST(Cosine, MismatchedSizesThrow) {
  const std::vector<float> a{1.0f};
  const std::vector<float> b{1.0f, 2.0f};
  EXPECT_THROW(cosine_similarity(a, b), PreconditionError);
  EXPECT_THROW(cosine_similarity(std::vector<float>{}, std::vector<float>{}),
               PreconditionError);
}

}  // namespace
}  // namespace mandipass::auth

#include "auth/cosine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::auth {
namespace {

TEST(Cosine, IdenticalVectorsSimilarityOne) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  EXPECT_NEAR(cosine_similarity(a, a), 1.0, 1e-12);
  EXPECT_NEAR(cosine_distance(a, a), 0.0, 1e-12);
}

TEST(Cosine, OppositeVectorsDistanceTwo) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{-1.0f, 0.0f};
  EXPECT_NEAR(cosine_distance(a, b), 2.0, 1e-12);
}

TEST(Cosine, OrthogonalVectorsDistanceOne) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{0.0f, 1.0f};
  EXPECT_NEAR(cosine_distance(a, b), 1.0, 1e-12);
}

TEST(Cosine, ScaleInvariant) {
  const std::vector<float> a{1.0f, 2.0f, -1.0f};
  const std::vector<float> b{3.0f, 6.0f, -3.0f};
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-6);
}

TEST(Cosine, ZeroVectorGivesZeroSimilarity) {
  const std::vector<float> a{0.0f, 0.0f};
  const std::vector<float> b{1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(Cosine, KnownAngle) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{1.0f, 1.0f};
  EXPECT_NEAR(cosine_similarity(a, b), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(Cosine, BoundsOnRandomVectors) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<float> a(32);
    std::vector<float> b(32);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<float>(rng.normal());
      b[i] = static_cast<float>(rng.normal());
    }
    const double d = cosine_distance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 2.0);
  }
}

TEST(Cosine, MismatchedSizesThrow) {
  const std::vector<float> a{1.0f};
  const std::vector<float> b{1.0f, 2.0f};
  EXPECT_THROW(cosine_similarity(a, b), PreconditionError);
  EXPECT_THROW(cosine_similarity(std::vector<float>{}, std::vector<float>{}),
               PreconditionError);
}

}  // namespace
}  // namespace mandipass::auth

// Overload-resilience layer (DESIGN.md §17): admission-queue bounds,
// deterministic retry backoff through the capturing sleep hook, the
// bounded/integrity-checked MatrixCache, deadline propagation through the
// sharded engine, and the full ResilientVerifier taxonomy — shed counts
// exact by arrival order, stall-skew expiry, degraded-mode serving with
// bit-identical distances, and breaker-gated persistence with recovery.
#include "auth/resilience/resilient_verifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "auth/batch_verifier.h"
#include "auth/gaussian_matrix.h"
#include "auth/matrix_cache.h"
#include "auth/resilience/admission_queue.h"
#include "auth/resilience/backoff.h"
#include "auth/sharded_verifier.h"
#include "common/deadline.h"
#include "common/io.h"
#include "common/obs.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace mandipass::auth::resilience {
namespace {

constexpr std::size_t kDim = 32;

std::uint64_t counter_value(const char* name) {
  return common::obs::counter(name).value();
}

std::vector<float> random_print(Rng& rng) {
  std::vector<float> v(kDim);
  for (float& x : v) {
    x = static_cast<float>(rng.uniform());
  }
  return v;
}

StoredTemplate make_template(std::span<const float> print, std::uint64_t seed,
                             std::uint32_t version) {
  const GaussianMatrix g(seed, print.size());
  StoredTemplate tmpl;
  tmpl.data = g.transform(print);
  tmpl.matrix_seed = seed;
  tmpl.key_version = version;
  return tmpl;
}

std::string user_name(std::size_t u) { return "user" + std::to_string(u); }

// Captured delay sequence for the retry-sleep hook (a plain function
// pointer, so the capture target is file-static).
std::vector<std::int64_t> g_captured_sleeps;
void capture_sleep(std::int64_t delay_us) { g_captured_sleeps.push_back(delay_us); }
void swallow_sleep(std::int64_t) {}

/// Installs a sleep hook for the test body and restores the previous one
/// (and a disarmed io hook) on teardown.
class SleepHookGuard {
 public:
  explicit SleepHookGuard(SleepFn fn) : previous_(set_retry_sleep_fn(fn)) {
    g_captured_sleeps.clear();
  }
  ~SleepHookGuard() {
    set_retry_sleep_fn(previous_);
    common::disarm_io_fault();
  }
  SleepHookGuard(const SleepHookGuard&) = delete;
  SleepHookGuard& operator=(const SleepHookGuard&) = delete;

 private:
  SleepFn previous_;
};

std::string store_path(const char* tag) {
  return ::testing::TempDir() + "/mandipass_resil_" + tag + ".bin";
}

void clean_disk(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".bak").c_str());
  std::remove((path + ".bak.tmp").c_str());
}

// ---------------------------------------------------------------- queue

TEST(AdmissionQueue, BoundsAndDrainsInFifoOrder) {
  AdmissionQueue q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.try_push(10));
  EXPECT_TRUE(q.try_push(11));
  EXPECT_TRUE(q.try_push(12));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_FALSE(q.try_push(13));  // reject-newest: the bound holds
  EXPECT_EQ(q.size(), 3u);
  const std::vector<std::size_t> drained = q.drain();
  EXPECT_EQ(drained, (std::vector<std::size_t>{10, 11, 12}));
  EXPECT_EQ(q.size(), 0u);
  // The queue is reusable after a drain.
  EXPECT_TRUE(q.try_push(13));
  EXPECT_EQ(q.drain(), std::vector<std::size_t>{13});
}

// -------------------------------------------------------------- backoff

TEST(Backoff, ExponentialSequenceIsDeterministicAndClamped) {
  const BackoffPolicy policy;  // 1000us base, x2, 64ms clamp
  EXPECT_EQ(policy.delay_us(0), 1000);
  EXPECT_EQ(policy.delay_us(1), 2000);
  EXPECT_EQ(policy.delay_us(2), 4000);
  EXPECT_EQ(policy.delay_us(5), 32000);
  EXPECT_EQ(policy.delay_us(6), 64000);
  EXPECT_EQ(policy.delay_us(7), 64000);   // clamped
  EXPECT_EQ(policy.delay_us(40), 64000);  // clamp survives overflow-range attempts

  BackoffPolicy flat;
  flat.base_us = 500;
  flat.multiplier = 1.0;
  flat.max_us = 500;
  EXPECT_EQ(flat.delay_us(0), 500);
  EXPECT_EQ(flat.delay_us(9), 500);
}

TEST(Backoff, StoreRetrySleepsTheExactPolicySequence) {
  const SleepHookGuard guard(&capture_sleep);
  const std::string path = store_path("retry_backoff");
  clean_disk(path);

  BatchVerifier engine;
  Rng rng(31);
  const auto print = random_print(rng);
  engine.enroll("alice", make_template(print, 5, 1));

  // Two transient EIOs, then clean: save_file succeeds on the third
  // attempt after sleeping exactly delay_us(0), delay_us(1).
  common::arm_io_fault({.kind = common::IoFaultConfig::Kind::TransientError,
                        .fail_at_byte = 0,
                        .failures = 2});
  const auto result = engine.save_file(path, /*max_retries=*/3);
  EXPECT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(g_captured_sleeps, (std::vector<std::int64_t>{1000, 2000}));
  clean_disk(path);
}

// --------------------------------------------------------- matrix cache

TEST(MatrixCache, EvictsLeastRecentlyUsedPastTheCap) {
  MatrixCache cache({.max_entries = 2});
  const std::uint64_t evicted_before = counter_value("auth.matrix_cache.evicted");
  ASSERT_NE(cache.get(1, 8), nullptr);
  ASSERT_NE(cache.get(2, 8), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  // Touch seed 1 so seed 2 becomes the LRU victim.
  ASSERT_NE(cache.get(1, 8), nullptr);
  ASSERT_NE(cache.get(3, 8), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counter_value("auth.matrix_cache.evicted"), evicted_before + 1);
  EXPECT_EQ(cache.peek(2, 8), nullptr);  // the LRU seed is gone
  EXPECT_NE(cache.peek(1, 8), nullptr);
  EXPECT_NE(cache.peek(3, 8), nullptr);
}

TEST(MatrixCache, EvictedMatrixSurvivesThroughOutstandingSharedPtr) {
  MatrixCache cache({.max_entries = 1});
  const auto held = cache.get(7, 8);
  ASSERT_NE(held, nullptr);
  ASSERT_NE(cache.get(8, 8), nullptr);  // evicts seed 7 from the cache
  EXPECT_EQ(cache.peek(7, 8), nullptr);
  // The caller's reference is unaffected by the eviction.
  const GaussianMatrix fresh(7, 8);
  const std::vector<float> probe{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(held->transform(probe), fresh.transform(probe));
}

TEST(MatrixCache, PeekNeverBuildsAndNeverCountsHitOrMiss) {
  MatrixCache cache;
  const std::uint64_t hits = counter_value("auth.batch.matrix_cache_hits");
  const std::uint64_t misses = counter_value("auth.batch.matrix_cache_misses");
  EXPECT_EQ(cache.peek(42, 8), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_NE(cache.get(42, 8), nullptr);
  EXPECT_NE(cache.peek(42, 8), nullptr);
  EXPECT_EQ(cache.peek(42, 16), nullptr);  // dim mismatch is a miss
  EXPECT_EQ(counter_value("auth.batch.matrix_cache_hits"), hits);
  EXPECT_EQ(counter_value("auth.batch.matrix_cache_misses"), misses + 1);  // the get only
}

TEST(MatrixCache, PoisonIsDetectedAndHealedByRebuild) {
  MatrixCache cache;
  ASSERT_NE(cache.get(9, 8), nullptr);
  const std::uint64_t detected_before = counter_value("auth.matrix_cache.poison_detected");
  ASSERT_TRUE(cache.corrupt_integrity_for_test(9));
  EXPECT_FALSE(cache.corrupt_integrity_for_test(12345));  // absent seed

  // peek reports the poisoned entry as absent but must not mutate.
  EXPECT_EQ(cache.peek(9, 8), nullptr);
  EXPECT_EQ(counter_value("auth.matrix_cache.poison_detected"), detected_before + 1);
  EXPECT_EQ(cache.size(), 1u);

  // get detects, drops and rebuilds: the healed matrix is exact.
  const auto healed = cache.get(9, 8);
  ASSERT_NE(healed, nullptr);
  EXPECT_EQ(counter_value("auth.matrix_cache.poison_detected"), detected_before + 2);
  const GaussianMatrix fresh(9, 8);
  const std::vector<float> probe{8, 7, 6, 5, 4, 3, 2, 1};
  EXPECT_EQ(healed->transform(probe), fresh.transform(probe));
  // Healed entry passes integrity from now on.
  EXPECT_NE(cache.peek(9, 8), nullptr);
  EXPECT_EQ(counter_value("auth.matrix_cache.poison_detected"), detected_before + 2);
}

TEST(MatrixCache, SeedReappearingWithNewDimReplacesTheEntry) {
  MatrixCache cache;
  ASSERT_NE(cache.get(4, 8), nullptr);
  const auto wide = cache.get(4, 16);
  ASSERT_NE(wide, nullptr);
  EXPECT_EQ(wide->dim(), 16u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.peek(4, 8), nullptr);
  EXPECT_NE(cache.peek(4, 16), nullptr);
}

// ----------------------------------------------- deadline through shards

TEST(ShardedVerifierDeadline, ExpiredBudgetShortCircuitsEveryShard) {
  ShardedVerifier engine(4);
  Rng rng(32);
  std::vector<VerifyRequest> requests;
  for (std::size_t u = 0; u < 12; ++u) {
    const auto print = random_print(rng);
    engine.enroll(user_name(u), make_template(print, 600 + u, 1));
    requests.push_back({user_name(u), print});
  }
  common::VirtualClock clock;
  const auto deadline = common::Deadline::after_us(100, &clock);
  clock.advance_us(101);
  const BatchResult result = engine.verify_batch(requests, nullptr, deadline);
  EXPECT_EQ(result.stats.expired, 12u);
  for (const BatchDecision& d : result.decisions) {
    EXPECT_EQ(d.status, BatchStatus::Expired);
    EXPECT_EQ(d.reason, common::ErrorCode::DeadlineExceeded);
    EXPECT_FALSE(d.known);
  }
  // The same batch with budget left serves normally.
  const BatchResult ok = engine.verify_batch(requests, nullptr,
                                             common::Deadline::after_us(1'000'000, &clock));
  EXPECT_EQ(ok.stats.expired, 0u);
  EXPECT_EQ(ok.stats.known, 12u);
}

// ------------------------------------------------------ resilient layer

/// Shared scenario scaffolding: N users enrolled identically into a
/// ResilientVerifier and a plain ShardedVerifier reference.
struct Scenario {
  explicit Scenario(std::size_t shards, ResilienceConfig config = {}, std::size_t users = 24)
      : resilient(shards, config), reference(shards) {
    Rng rng(33);
    for (std::size_t u = 0; u < users; ++u) {
      prints.push_back(random_print(rng));
      // A few shared seed epochs so the coalesced path has real groups.
      const auto tmpl = make_template(prints[u], 700 + u % 4, static_cast<std::uint32_t>(u));
      resilient.enroll(user_name(u), tmpl);
      reference.enroll(user_name(u), tmpl);
      requests.push_back({user_name(u), prints[u]});
    }
  }

  ResilientVerifier resilient;
  ShardedVerifier reference;
  std::vector<std::vector<float>> prints;
  std::vector<VerifyRequest> requests;
};

TEST(ResilientVerifier, HealthyPathIsTransparent) {
  Scenario sc(4);
  const BatchResult want = sc.reference.verify_batch(sc.requests);
  const BatchResult got = sc.resilient.verify_batch(sc.requests);
  ASSERT_EQ(got.decisions.size(), want.decisions.size());
  for (std::size_t i = 0; i < want.decisions.size(); ++i) {
    EXPECT_EQ(got.decisions[i].status, want.decisions[i].status) << i;
    EXPECT_EQ(got.decisions[i].known, want.decisions[i].known) << i;
    EXPECT_EQ(got.decisions[i].key_version, want.decisions[i].key_version) << i;
    EXPECT_FALSE(got.decisions[i].degraded) << i;
    // Bit-identical distance: resilience must be containment, not noise.
    EXPECT_EQ(got.decisions[i].decision.distance, want.decisions[i].decision.distance) << i;
  }
  EXPECT_EQ(got.stats.shed, 0u);
  EXPECT_EQ(got.stats.expired, 0u);
  EXPECT_EQ(got.stats.degraded, 0u);
  EXPECT_EQ(got.stats.known, want.stats.known);
  EXPECT_EQ(got.stats.accepted, want.stats.accepted);
}

TEST(ResilientVerifier, ShedCountIsExactByArrivalOrder) {
  ResilienceConfig config;
  config.queue_capacity = 2;
  Scenario sc(2, config, /*users=*/16);

  // Replay admission arithmetic: serial, in request order, per-shard cap.
  std::vector<std::size_t> arrivals(sc.resilient.shard_count(), 0);
  std::vector<bool> expect_shed;
  for (const VerifyRequest& r : sc.requests) {
    const std::size_t s = sc.resilient.shard_for(r.user);
    expect_shed.push_back(arrivals[s] >= config.queue_capacity);
    ++arrivals[s];
  }
  const auto expected_shed =
      static_cast<std::size_t>(std::count(expect_shed.begin(), expect_shed.end(), true));
  ASSERT_GT(expected_shed, 0u);  // 16 users over 2 shards x capacity 2 must shed

  const std::uint64_t shed_before = counter_value("auth.resil.shed");
  const std::uint64_t admitted_before = counter_value("auth.resil.admitted");
  for (int round = 0; round < 3; ++round) {
    const BatchResult got = sc.resilient.verify_batch(sc.requests);
    EXPECT_EQ(got.stats.shed, expected_shed) << "round " << round;
    for (std::size_t i = 0; i < sc.requests.size(); ++i) {
      if (expect_shed[i]) {
        EXPECT_EQ(got.decisions[i].status, BatchStatus::Shed) << i;
        EXPECT_EQ(got.decisions[i].reason, common::ErrorCode::Overloaded) << i;
        EXPECT_FALSE(got.decisions[i].known) << i;
      } else {
        EXPECT_TRUE(got.decisions[i].known) << i;
      }
    }
  }
  EXPECT_EQ(counter_value("auth.resil.shed"), shed_before + 3 * expected_shed);
  EXPECT_EQ(counter_value("auth.resil.admitted"),
            admitted_before + 3 * (sc.requests.size() - expected_shed));
}

TEST(ResilientVerifier, ExpiredDeadlineRejectsAtAdmission) {
  Scenario sc(4);
  common::VirtualClock clock;
  const auto deadline = common::Deadline::after_us(50, &clock);
  clock.advance_us(50);
  const std::uint64_t expired_before = counter_value("auth.resil.expired");
  const BatchResult got = sc.resilient.verify_batch(sc.requests, deadline);
  EXPECT_EQ(got.stats.expired, sc.requests.size());
  EXPECT_EQ(got.stats.shed, 0u);
  for (const BatchDecision& d : got.decisions) {
    EXPECT_EQ(d.status, BatchStatus::Expired);
    EXPECT_EQ(d.reason, common::ErrorCode::DeadlineExceeded);
  }
  EXPECT_EQ(counter_value("auth.resil.expired"), expired_before + sc.requests.size());
}

TEST(ResilientVerifier, SlowShardStallExpiresExactlyItsOwnRequests) {
  Scenario sc(4);
  common::VirtualClock clock;
  constexpr std::size_t kStalled = 2;
  // 50ms of scripted stall against a 5ms budget: every request routed to
  // the stalled shard expires; every other shard is untouched. The clock
  // never advances, so the counts hold for any worker interleaving.
  sc.resilient.faults().arm_slow_shard(kStalled, 50'000, /*batches=*/1);
  const auto deadline = common::Deadline::after_us(5'000, &clock);
  const BatchResult got = sc.resilient.verify_batch(sc.requests, deadline);

  std::size_t routed_to_stalled = 0;
  for (std::size_t i = 0; i < sc.requests.size(); ++i) {
    if (sc.resilient.shard_for(sc.requests[i].user) == kStalled) {
      ++routed_to_stalled;
      EXPECT_EQ(got.decisions[i].status, BatchStatus::Expired) << i;
    } else {
      EXPECT_TRUE(got.decisions[i].known) << i;
      EXPECT_FALSE(got.decisions[i].degraded) << i;
    }
  }
  ASSERT_GT(routed_to_stalled, 0u);
  EXPECT_EQ(got.stats.expired, routed_to_stalled);

  // The single charge is spent: the next batch is fully healthy.
  const BatchResult next = sc.resilient.verify_batch(sc.requests, deadline);
  EXPECT_EQ(next.stats.expired, 0u);
  EXPECT_EQ(next.stats.known, sc.requests.size());
}

TEST(ResilientVerifier, EngagedBreakerServesDegradedModeExactly) {
  ResilienceConfig config;
  config.breaker.failure_threshold = 1;
  Scenario sc(4, config);
  constexpr std::size_t kBroken = 1;

  // Warm the shared cache through one healthy pass, then trip the shard.
  const BatchResult healthy = sc.resilient.verify_batch(sc.requests);
  sc.resilient.breaker(kBroken).record_failure();
  ASSERT_TRUE(sc.resilient.breaker(kBroken).engaged());

  const std::uint64_t degraded_before = counter_value("auth.resil.degraded");
  const BatchResult got = sc.resilient.verify_batch(sc.requests);
  std::size_t on_broken = 0;
  for (std::size_t i = 0; i < sc.requests.size(); ++i) {
    const bool broken = sc.resilient.shard_for(sc.requests[i].user) == kBroken;
    on_broken += broken ? 1 : 0;
    EXPECT_EQ(got.decisions[i].degraded, broken) << i;
    // Degraded answers are exact: same matrix (cache peek), same distance.
    EXPECT_TRUE(got.decisions[i].known) << i;
    EXPECT_EQ(got.decisions[i].status, healthy.decisions[i].status) << i;
    EXPECT_EQ(got.decisions[i].decision.distance, healthy.decisions[i].decision.distance) << i;
  }
  ASSERT_GT(on_broken, 0u);
  EXPECT_EQ(got.stats.degraded, on_broken);
  EXPECT_EQ(counter_value("auth.resil.degraded"), degraded_before + on_broken);

  // Degraded mode keeps the totality taxonomy for malformed traffic.
  std::string broken_user;
  for (const VerifyRequest& r : sc.requests) {
    if (sc.resilient.shard_for(r.user) == kBroken) {
      broken_user = r.user;
      break;
    }
  }
  const std::vector<VerifyRequest> junk{{broken_user, {}}, {"nobody-" + broken_user, {1.0f}}};
  const BatchResult junk_result = sc.resilient.verify_batch(junk);
  EXPECT_EQ(junk_result.decisions[0].status, BatchStatus::Invalid);
  EXPECT_EQ(junk_result.decisions[0].reason, common::ErrorCode::InvalidInput);
}

TEST(ResilientVerifier, DegradedColdCacheMissIsATypedShed) {
  ResilienceConfig config;
  config.breaker.failure_threshold = 1;
  Scenario sc(1, config);  // one shard: every request hits the broken one
  sc.resilient.breaker(0).record_failure();
  ASSERT_TRUE(sc.resilient.breaker(0).engaged());

  // No healthy pass ran, so the cache holds nothing the degraded path
  // may serve: every enrolled request is shed, honestly typed.
  const std::uint64_t miss_before = counter_value("auth.resil.degraded_miss");
  const BatchResult got = sc.resilient.verify_batch(sc.requests);
  EXPECT_EQ(got.stats.shed, sc.requests.size());
  EXPECT_EQ(got.stats.degraded, 0u);
  for (const BatchDecision& d : got.decisions) {
    EXPECT_EQ(d.status, BatchStatus::Shed);
    EXPECT_EQ(d.reason, common::ErrorCode::Overloaded);
  }
  EXPECT_EQ(counter_value("auth.resil.degraded_miss"), miss_before + sc.requests.size());
}

TEST(ResilientVerifier, PersistFailuresTripBreakerAndProbeRecloses) {
  const SleepHookGuard guard(&swallow_sleep);
  const std::string path = store_path("persist_breaker");
  clean_disk(path);

  common::VirtualClock clock;
  ResilienceConfig config;
  config.clock = &clock;
  config.breaker.failure_threshold = 2;
  config.breaker.open_duration_us = 1'000'000;
  Scenario sc(2, config, /*users=*/8);

  // An EIO burst long enough to exhaust every retry of several saves.
  sc.resilient.faults().arm_store_fault_burst(
      {.kind = common::IoFaultConfig::Kind::TransientError, .fail_at_byte = 0, .failures = 100});

  EXPECT_FALSE(sc.resilient.persist_shard(0, path).ok());
  EXPECT_EQ(sc.resilient.breaker(0).trips(), 0u);  // one failure of two
  EXPECT_FALSE(sc.resilient.persist_shard(0, path).ok());
  EXPECT_EQ(sc.resilient.breaker(0).trips(), 1u);
  ASSERT_EQ(sc.resilient.breaker(0).state(), BreakerState::Open);

  // While Open, persistence is rejected up front with a typed Overloaded
  // error — the store is not touched, so the armed burst is not consumed.
  const auto rejected = sc.resilient.persist_shard(0, path);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, common::ErrorCode::Overloaded);

  // Verification meanwhile degrades instead of failing: shard 0 serves
  // from cache (warmed here by one pre-trip pass on shard 1's engine —
  // the cache is shared, so run one healthy batch through the engine).
  sc.resilient.engine().verify_batch(sc.requests);  // warm shared cache
  const BatchResult during = sc.resilient.verify_batch(sc.requests);
  for (std::size_t i = 0; i < sc.requests.size(); ++i) {
    EXPECT_EQ(during.decisions[i].degraded,
              sc.resilient.shard_for(sc.requests[i].user) == 0)
        << i;
  }

  // Recovery: the fault clears, the cooldown elapses, and the next
  // persist is admitted as the half-open probe; its success re-closes.
  sc.resilient.faults().clear_store_faults();
  clock.advance_us(1'000'000);
  const auto probe = sc.resilient.persist_shard(0, path);
  EXPECT_TRUE(probe.ok()) << probe.error().message;
  EXPECT_EQ(sc.resilient.breaker(0).state(), BreakerState::Closed);
  EXPECT_EQ(sc.resilient.breaker(0).closes(), 1u);

  // Fully healthy again: no degraded bit anywhere.
  const BatchResult after = sc.resilient.verify_batch(sc.requests);
  EXPECT_EQ(after.stats.degraded, 0u);
  EXPECT_EQ(after.stats.known, sc.requests.size());
  clean_disk(path);
}

TEST(ResilientVerifier, PoisonedCacheEntrySelfHealsThroughService) {
  Scenario sc(2);
  const BatchResult healthy = sc.resilient.verify_batch(sc.requests);

  // Poison every seed epoch the scenario enrolled.
  std::size_t poisoned = 0;
  for (std::uint64_t seed = 700; seed < 704; ++seed) {
    poisoned += sc.resilient.faults().poison_matrix(sc.resilient.engine().matrix_cache(), seed)
                    ? 1
                    : 0;
  }
  ASSERT_EQ(poisoned, 4u);

  // The healthy path detects every poisoned entry, rebuilds, and the
  // decisions come out bit-identical — no silent wrong answers.
  const std::uint64_t detected_before = counter_value("auth.matrix_cache.poison_detected");
  const BatchResult got = sc.resilient.verify_batch(sc.requests);
  EXPECT_GE(counter_value("auth.matrix_cache.poison_detected"), detected_before + 4);
  for (std::size_t i = 0; i < sc.requests.size(); ++i) {
    EXPECT_EQ(got.decisions[i].status, healthy.decisions[i].status) << i;
    EXPECT_EQ(got.decisions[i].decision.distance, healthy.decisions[i].decision.distance) << i;
  }
}

TEST(ResilientVerifier, CountersAreThreadCountInvariant) {
  ResilienceConfig config;
  config.queue_capacity = 3;
  const char* names[] = {"auth.resil.admitted", "auth.resil.shed", "auth.resil.expired",
                         "auth.resil.degraded", "auth.resil.degraded_miss"};
  std::vector<std::uint64_t> deltas;
  for (const std::size_t workers : {1u, 4u}) {
    Scenario sc(4, config, /*users=*/20);
    common::ThreadPool pool(workers);
    std::vector<std::uint64_t> before;
    for (const char* name : names) {
      before.push_back(counter_value(name));
    }
    const BatchResult got = sc.resilient.verify_batch(sc.requests, {}, &pool);
    std::vector<std::uint64_t> delta;
    for (std::size_t n = 0; n < std::size(names); ++n) {
      delta.push_back(counter_value(names[n]) - before[n]);
    }
    EXPECT_GT(got.stats.shed, 0u);
    if (deltas.empty()) {
      deltas = delta;
    } else {
      EXPECT_EQ(deltas, delta) << "counter deltas differ between 1 and 4 workers";
    }
  }
}

}  // namespace
}  // namespace mandipass::auth::resilience

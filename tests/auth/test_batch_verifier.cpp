#include "auth/batch_verifier.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "auth/gaussian_matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace mandipass::auth {
namespace {

constexpr std::size_t kDim = 32;

std::vector<float> random_print(Rng& rng) {
  std::vector<float> v(kDim);
  for (float& x : v) {
    x = static_cast<float>(rng.uniform());
  }
  return v;
}

StoredTemplate make_template(std::span<const float> print, std::uint64_t seed,
                             std::uint32_t version) {
  const GaussianMatrix g(seed, print.size());
  StoredTemplate tmpl;
  tmpl.data = g.transform(print);
  tmpl.matrix_seed = seed;
  tmpl.key_version = version;
  return tmpl;
}

TEST(BatchVerifier, UnknownUserIsNotKnown) {
  BatchVerifier engine;
  Rng rng(1);
  const auto probe = random_print(rng);
  const BatchDecision d = engine.verify_one("nobody", probe);
  EXPECT_FALSE(d.known);
  EXPECT_EQ(d.status, BatchStatus::Unknown);
  EXPECT_EQ(d.reason, common::ErrorCode::UnknownUser);
}

// verify_one runs on thread-pool workers: *every* malformed request must
// come back as a structured decision, never as an exception that
// parallel_for rethrows on the caller and voids the rest of the batch.
TEST(BatchVerifier, EmptyProbeIsInvalidNotThrown) {
  BatchVerifier engine;
  Rng rng(11);
  engine.enroll("alice", make_template(random_print(rng), 3, 0));
  BatchDecision d;
  EXPECT_NO_THROW(d = engine.verify_one("alice", std::span<const float>{}));
  EXPECT_FALSE(d.known);
  EXPECT_EQ(d.status, BatchStatus::Invalid);
  EXPECT_EQ(d.reason, common::ErrorCode::InvalidInput);
}

TEST(BatchVerifier, NonFiniteProbeIsInvalidNotThrown) {
  BatchVerifier engine;
  Rng rng(12);
  const auto print = random_print(rng);
  engine.enroll("alice", make_template(print, 3, 0));
  auto probe = print;
  probe[kDim / 2] = std::numeric_limits<float>::quiet_NaN();
  BatchDecision d;
  EXPECT_NO_THROW(d = engine.verify_one("alice", probe));
  EXPECT_EQ(d.status, BatchStatus::Invalid);
  EXPECT_EQ(d.reason, common::ErrorCode::NonFiniteSample);
}

TEST(BatchVerifier, DimensionMismatchIsInvalidNotThrown) {
  BatchVerifier engine;
  Rng rng(13);
  const auto print = random_print(rng);
  engine.enroll("alice", make_template(print, 3, 0));
  std::vector<float> short_probe(print.begin(), print.begin() + kDim / 2);
  BatchDecision d;
  EXPECT_NO_THROW(d = engine.verify_one("alice", short_probe));
  EXPECT_EQ(d.status, BatchStatus::Invalid);
  EXPECT_EQ(d.reason, common::ErrorCode::DimensionMismatch);
}

TEST(BatchVerifier, MixedBatchWithMalformedRequestsCompletes) {
  BatchVerifier engine;
  Rng rng(14);
  const auto print = random_print(rng);
  engine.enroll("alice", make_template(print, 3, 2));

  std::vector<VerifyRequest> requests;
  requests.push_back({"alice", print});                               // Accepted
  requests.push_back({"mallory", print});                             // Unknown
  requests.push_back({"alice", {}});                                  // Invalid: empty
  std::vector<float> nan_probe = print;
  nan_probe[0] = std::numeric_limits<float>::infinity();
  requests.push_back({"alice", std::move(nan_probe)});                // Invalid: non-finite
  requests.push_back({"alice", {1.0f, 2.0f}});                        // Invalid: wrong dim

  common::ThreadPool pool(4);
  BatchResult result;
  EXPECT_NO_THROW(result = engine.verify_batch(requests, &pool));
  ASSERT_EQ(result.decisions.size(), 5u);
  EXPECT_EQ(result.decisions[0].status, BatchStatus::Accepted);
  EXPECT_EQ(result.decisions[0].key_version, 2u);
  EXPECT_EQ(result.decisions[1].status, BatchStatus::Unknown);
  EXPECT_EQ(result.decisions[2].status, BatchStatus::Invalid);
  EXPECT_EQ(result.decisions[3].status, BatchStatus::Invalid);
  EXPECT_EQ(result.decisions[4].status, BatchStatus::Invalid);
  EXPECT_EQ(result.stats.requests, 5u);
  EXPECT_EQ(result.stats.known, 1u);
  EXPECT_EQ(result.stats.accepted, 1u);
  EXPECT_EQ(result.stats.unknown, 1u);
  EXPECT_EQ(result.stats.invalid, 3u);
}

TEST(BatchVerifier, GenuineAcceptedImpostorRejected) {
  BatchVerifier engine;
  Rng rng(2);
  const auto alice = random_print(rng);
  const auto mallory = random_print(rng);
  engine.enroll("alice", make_template(alice, 77, 1));

  const BatchDecision genuine = engine.verify_one("alice", alice);
  ASSERT_TRUE(genuine.known);
  EXPECT_EQ(genuine.key_version, 1u);
  EXPECT_TRUE(genuine.decision.accepted);
  EXPECT_NEAR(genuine.decision.distance, 0.0, 1e-5);

  const BatchDecision impostor = engine.verify_one("alice", mallory);
  ASSERT_TRUE(impostor.known);
  EXPECT_GT(impostor.decision.distance, genuine.decision.distance);
}

TEST(BatchVerifier, MatchesVerifierVerifyUser) {
  // The concurrent engine must agree bit-for-bit with the serial
  // store-backed flow (which rebuilds the Gaussian matrix per call —
  // the engine's cache must not change the math).
  BatchVerifier engine;
  TemplateStore store;
  Verifier verifier;
  Rng rng(3);
  const auto print = random_print(rng);
  const auto tmpl = make_template(print, 123, 4);
  engine.enroll("u", tmpl);
  store.enroll("u", tmpl);

  auto probe = print;
  probe[0] += 0.25f;
  const BatchDecision d = engine.verify_one("u", probe);
  const auto reference = verifier.verify_user(store, "u", probe);
  ASSERT_TRUE(d.known);
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(d.decision.accepted, reference->accepted);
  EXPECT_EQ(d.decision.distance, reference->distance);
}

TEST(BatchVerifier, RevokeAndRekey) {
  BatchVerifier engine;
  Rng rng(4);
  const auto print = random_print(rng);
  engine.enroll("bob", make_template(print, 10, 1));
  EXPECT_EQ(engine.size(), 1u);

  engine.enroll("bob", make_template(print, 11, 2));  // re-key
  const BatchDecision d = engine.verify_one("bob", print);
  ASSERT_TRUE(d.known);
  EXPECT_EQ(d.key_version, 2u);
  EXPECT_TRUE(d.decision.accepted);

  EXPECT_TRUE(engine.revoke("bob"));
  EXPECT_FALSE(engine.revoke("bob"));
  EXPECT_FALSE(engine.verify_one("bob", print).known);
  EXPECT_EQ(engine.size(), 0u);
}

TEST(BatchVerifier, BatchDecisionsAlignWithRequests) {
  BatchVerifier engine;
  Rng rng(5);
  std::vector<std::vector<float>> prints;
  for (std::size_t u = 0; u < 6; ++u) {
    prints.push_back(random_print(rng));
    engine.enroll("user" + std::to_string(u),
                  make_template(prints.back(), 100 + u, static_cast<std::uint32_t>(u)));
  }

  std::vector<VerifyRequest> requests;
  for (std::size_t u = 0; u < 6; ++u) {
    requests.push_back({"user" + std::to_string(u), prints[u]});
  }
  requests.push_back({"ghost", prints[0]});

  common::ThreadPool pool(4);
  const BatchResult result = engine.verify_batch(requests, &pool);
  ASSERT_EQ(result.decisions.size(), requests.size());
  for (std::size_t u = 0; u < 6; ++u) {
    ASSERT_TRUE(result.decisions[u].known) << u;
    EXPECT_EQ(result.decisions[u].key_version, u);
    EXPECT_TRUE(result.decisions[u].decision.accepted);
  }
  EXPECT_FALSE(result.decisions.back().known);

  EXPECT_EQ(result.stats.requests, 7u);
  EXPECT_EQ(result.stats.known, 6u);
  EXPECT_EQ(result.stats.accepted, 6u);
  EXPECT_GT(result.stats.throughput_per_s, 0.0);
  EXPECT_GE(result.stats.max_request_ms, result.stats.mean_request_ms);
}

TEST(BatchVerifier, BatchIsThreadCountInvariant) {
  BatchVerifier engine;
  Rng rng(6);
  std::vector<VerifyRequest> requests;
  for (std::size_t u = 0; u < 24; ++u) {
    const auto print = random_print(rng);
    engine.enroll("user" + std::to_string(u),
                  make_template(print, 500 + u, 1));
    auto probe = print;
    probe[u % kDim] += 0.1f;
    requests.push_back({"user" + std::to_string(u), std::move(probe)});
  }

  common::ThreadPool one(1);
  common::ThreadPool eight(8);
  const BatchResult serial = engine.verify_batch(requests, &one);
  const BatchResult parallel = engine.verify_batch(requests, &eight);
  ASSERT_EQ(serial.decisions.size(), parallel.decisions.size());
  for (std::size_t i = 0; i < serial.decisions.size(); ++i) {
    EXPECT_EQ(serial.decisions[i].known, parallel.decisions[i].known);
    EXPECT_EQ(serial.decisions[i].key_version, parallel.decisions[i].key_version);
    EXPECT_EQ(serial.decisions[i].decision.accepted, parallel.decisions[i].decision.accepted);
    EXPECT_EQ(serial.decisions[i].decision.distance, parallel.decisions[i].decision.distance);
  }
}

TEST(BatchVerifier, SaveLoadRoundTrip) {
  BatchVerifier engine;
  Rng rng(7);
  const auto print = random_print(rng);
  engine.enroll("carol", make_template(print, 9, 3));

  std::stringstream buffer;
  engine.save(buffer);
  BatchVerifier restored;
  restored.load(buffer);
  const BatchDecision d = restored.verify_one("carol", print);
  ASSERT_TRUE(d.known);
  EXPECT_EQ(d.key_version, 3u);
  EXPECT_TRUE(d.decision.accepted);
}

TEST(BatchVerifier, ThresholdIsTunable) {
  BatchVerifier engine(0.5);
  EXPECT_DOUBLE_EQ(engine.threshold(), 0.5);
  engine.set_threshold(0.1);
  EXPECT_DOUBLE_EQ(engine.threshold(), 0.1);
  Rng rng(8);
  const auto print = random_print(rng);
  engine.enroll("dave", make_template(print, 21, 1));
  auto probe = print;
  for (float& x : probe) {
    x = 1.0f - x;  // far-away probe
  }
  const BatchDecision d = engine.verify_one("dave", probe);
  ASSERT_TRUE(d.known);
  EXPECT_FALSE(d.decision.accepted);
}

}  // namespace
}  // namespace mandipass::auth

#include "auth/gaussian_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "auth/cosine.h"
#include "common/error.h"
#include "common/rng.h"

namespace mandipass::auth {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng.uniform(0.0, 1.0));  // sigmoid-range, like MandiblePrints
  }
  return v;
}

TEST(GaussianMatrix, DeterministicForSeed) {
  const GaussianMatrix a(7, 64);
  const GaussianMatrix b(7, 64);
  const auto x = random_vec(64, 1);
  const auto ya = a.transform(x);
  const auto yb = b.transform(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

TEST(GaussianMatrix, DifferentSeedsDiffer) {
  const GaussianMatrix a(7, 64);
  const GaussianMatrix b(8, 64);
  const auto x = random_vec(64, 1);
  EXPECT_GT(cosine_distance(a.transform(x), b.transform(x)), 0.3);
}

TEST(GaussianMatrix, SameMatrixPreservesSimilarStructure) {
  // The core cancelable-template property: distances under the SAME matrix
  // track the original distances (random projection ~ isometry on average).
  const GaussianMatrix g(42, 128);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    auto x = random_vec(128, 100 + trial);
    auto y = x;
    // y = small perturbation of x (a genuine user's fresh probe).
    for (auto& v : y) {
      v += static_cast<float>(rng.normal(0.0, 0.02));
    }
    const double before = cosine_distance(x, y);
    const double after = cosine_distance(g.transform(x), g.transform(y));
    EXPECT_LT(std::abs(after - before), 0.12);
  }
}

TEST(GaussianMatrix, DifferentMatricesDecorrelate) {
  // The re-key property: the SAME print under two different matrices must
  // look like strangers (this is what defeats replay).
  Rng rng(3);
  double mean_distance = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const GaussianMatrix g1(1000 + t, 128);
    const GaussianMatrix g2(2000 + t, 128);
    const auto x = random_vec(128, 300 + t);
    mean_distance += cosine_distance(g1.transform(x), g2.transform(x));
  }
  mean_distance /= trials;
  // Random projections of positive vectors are near-orthogonal on average.
  EXPECT_GT(mean_distance, 0.7);
}

TEST(GaussianMatrix, TransformIsLinear) {
  const GaussianMatrix g(9, 32);
  const auto x = random_vec(32, 4);
  auto x2 = x;
  for (auto& v : x2) {
    v *= 2.0f;
  }
  const auto y = g.transform(x);
  const auto y2 = g.transform(x2);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y2[i], 2.0f * y[i], 1e-3f);
  }
}

TEST(GaussianMatrix, OutputDimensionMatches) {
  const GaussianMatrix g(5, 16);
  EXPECT_EQ(g.transform(random_vec(16, 5)).size(), 16u);
  EXPECT_EQ(g.dim(), 16u);
  EXPECT_EQ(g.seed(), 5u);
}

TEST(GaussianMatrix, TemplateBytes) {
  EXPECT_EQ(GaussianMatrix::template_bytes(512), 2048u);  // ~the paper's 1.8 KB claim
}

TEST(GaussianMatrix, WrongInputSizeThrows) {
  const GaussianMatrix g(5, 16);
  EXPECT_THROW(g.transform(random_vec(8, 1)), PreconditionError);
}

TEST(GaussianMatrix, ZeroDimThrows) {
  EXPECT_THROW(GaussianMatrix(1, 0), PreconditionError);
}

}  // namespace
}  // namespace mandipass::auth

#include "auth/template_store.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mandipass::auth {
namespace {

StoredTemplate make_template(float fill, std::uint64_t seed) {
  StoredTemplate t;
  t.data.assign(16, fill);
  t.matrix_seed = seed;
  return t;
}

TEST(TemplateStore, EnrollAndLookup) {
  TemplateStore store;
  store.enroll("alice", make_template(1.0f, 7));
  const auto t = store.lookup("alice");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->matrix_seed, 7u);
  EXPECT_EQ(t->data.size(), 16u);
}

TEST(TemplateStore, LookupUnknownIsEmpty) {
  TemplateStore store;
  EXPECT_FALSE(store.lookup("nobody").has_value());
}

TEST(TemplateStore, ReEnrollOverwrites) {
  TemplateStore store;
  store.enroll("alice", make_template(1.0f, 7));
  store.enroll("alice", make_template(2.0f, 8));
  const auto t = store.lookup("alice");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->matrix_seed, 8u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TemplateStore, Revoke) {
  TemplateStore store;
  store.enroll("alice", make_template(1.0f, 7));
  EXPECT_TRUE(store.revoke("alice"));
  EXPECT_FALSE(store.lookup("alice").has_value());
  EXPECT_FALSE(store.revoke("alice"));
}

TEST(TemplateStore, StealMatchesLookup) {
  TemplateStore store;
  store.enroll("bob", make_template(3.0f, 9));
  const auto stolen = store.steal("bob");
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->data, store.lookup("bob")->data);
}

TEST(TemplateStore, MultipleUsers) {
  TemplateStore store;
  store.enroll("a", make_template(1.0f, 1));
  store.enroll("b", make_template(2.0f, 2));
  store.enroll("c", make_template(3.0f, 3));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.lookup("b")->matrix_seed, 2u);
}

TEST(TemplateStore, StorageBytesAccounting) {
  TemplateStore store;
  store.enroll("a", make_template(1.0f, 1));
  const std::size_t one = store.storage_bytes();
  store.enroll("b", make_template(2.0f, 2));
  EXPECT_EQ(store.storage_bytes(), 2 * one);
  EXPECT_GE(one, 16 * sizeof(float));
}

TEST(TemplateStore, InvalidEnrollThrows) {
  TemplateStore store;
  EXPECT_THROW(store.enroll("", make_template(1.0f, 1)), PreconditionError);
  StoredTemplate empty;
  EXPECT_THROW(store.enroll("x", empty), PreconditionError);
}

}  // namespace
}  // namespace mandipass::auth

#include <gtest/gtest.h>

#include <sstream>

#include "auth/template_store.h"
#include "common/error.h"

namespace mandipass::auth {
namespace {

StoredTemplate make_template(float fill, std::uint64_t seed, std::uint32_t version = 0) {
  StoredTemplate t;
  t.data.assign(8, fill);
  t.matrix_seed = seed;
  t.key_version = version;
  return t;
}

TEST(TemplateStoreIo, RoundTrip) {
  TemplateStore store;
  store.enroll("alice", make_template(1.5f, 7, 2));
  store.enroll("bob", make_template(-0.5f, 9));
  std::stringstream ss;
  store.save(ss);
  TemplateStore back;
  back.load(ss);
  EXPECT_EQ(back.size(), 2u);
  const auto alice = back.lookup("alice");
  ASSERT_TRUE(alice.has_value());
  EXPECT_EQ(alice->matrix_seed, 7u);
  EXPECT_EQ(alice->key_version, 2u);
  EXPECT_EQ(alice->data, store.lookup("alice")->data);
}

TEST(TemplateStoreIo, EmptyStoreRoundTrip) {
  TemplateStore store;
  std::stringstream ss;
  store.save(ss);
  TemplateStore back;
  back.enroll("stale", make_template(1.0f, 1));
  back.load(ss);
  EXPECT_EQ(back.size(), 0u);  // load replaces contents
}

TEST(TemplateStoreIo, GarbageThrows) {
  TemplateStore store;
  std::stringstream ss("garbage bytes here, definitely not a store");
  EXPECT_THROW(store.load(ss), SerializationError);
}

TEST(TemplateStoreIo, TruncatedThrowsAndPreservesContents) {
  TemplateStore source;
  source.enroll("alice", make_template(2.0f, 3));
  std::stringstream ss;
  source.save(ss);
  std::string blob = ss.str();
  blob.resize(blob.size() - 10);
  std::stringstream truncated(blob);
  TemplateStore target;
  target.enroll("keepme", make_template(4.0f, 4));
  EXPECT_THROW(target.load(truncated), SerializationError);
  EXPECT_TRUE(target.lookup("keepme").has_value());  // unchanged on failure
}

}  // namespace
}  // namespace mandipass::auth

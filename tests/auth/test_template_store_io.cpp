#include <gtest/gtest.h>

#include <sstream>

#include "auth/template_store.h"
#include "common/error.h"
#include "nn/serialize.h"

namespace mandipass::auth {
namespace {

StoredTemplate make_template(float fill, std::uint64_t seed, std::uint32_t version = 0) {
  StoredTemplate t;
  t.data.assign(8, fill);
  t.matrix_seed = seed;
  t.key_version = version;
  return t;
}

TEST(TemplateStoreIo, RoundTrip) {
  TemplateStore store;
  store.enroll("alice", make_template(1.5f, 7, 2));
  store.enroll("bob", make_template(-0.5f, 9));
  std::stringstream ss;
  store.save(ss);
  TemplateStore back;
  back.load(ss);
  EXPECT_EQ(back.size(), 2u);
  const auto alice = back.lookup("alice");
  ASSERT_TRUE(alice.has_value());
  EXPECT_EQ(alice->matrix_seed, 7u);
  EXPECT_EQ(alice->key_version, 2u);
  EXPECT_EQ(alice->data, store.lookup("alice")->data);
}

TEST(TemplateStoreIo, EmptyStoreRoundTrip) {
  TemplateStore store;
  std::stringstream ss;
  store.save(ss);
  TemplateStore back;
  back.enroll("stale", make_template(1.0f, 1));
  back.load(ss);
  EXPECT_EQ(back.size(), 0u);  // load replaces contents
}

TEST(TemplateStoreIo, GarbageThrows) {
  TemplateStore store;
  std::stringstream ss("garbage bytes here, definitely not a store");
  EXPECT_THROW(store.load(ss), SerializationError);
}

TEST(TemplateStoreIo, TruncatedThrowsAndPreservesContents) {
  TemplateStore source;
  source.enroll("alice", make_template(2.0f, 3));
  std::stringstream ss;
  source.save(ss);
  std::string blob = ss.str();
  blob.resize(blob.size() - 10);
  std::stringstream truncated(blob);
  TemplateStore target;
  target.enroll("keepme", make_template(4.0f, 4));
  EXPECT_THROW(target.load(truncated), SerializationError);
  EXPECT_TRUE(target.lookup("keepme").has_value());  // unchanged on failure
}

// The motivating failure mode for common::read_exact: a template file cut
// off at *any* byte must throw, never yield a zero-filled-but-matchable
// template. Exhaustively truncate at every offset of a two-user store.
TEST(TemplateStoreIo, TruncationAtEveryOffsetThrows) {
  TemplateStore source;
  source.enroll("alice", make_template(2.0f, 3, 1));
  source.enroll("bob", make_template(-1.0f, 5, 2));
  std::stringstream ss;
  source.save(ss);
  const std::string blob = ss.str();
  ASSERT_GT(blob.size(), 0u);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::stringstream truncated(blob.substr(0, cut));
    TemplateStore target;
    target.enroll("keepme", make_template(4.0f, 4));
    EXPECT_THROW(target.load(truncated), Error) << "no throw at offset " << cut;
    // Failed loads must not leave a partially-populated store behind.
    EXPECT_EQ(target.size(), 1u) << "store mutated at offset " << cut;
    EXPECT_TRUE(target.lookup("keepme").has_value());
    EXPECT_FALSE(target.lookup("alice").has_value()) << "partial load at offset " << cut;
  }
}

TEST(TemplateStoreIo, OversizedCountHeaderThrows) {
  std::stringstream ss;
  nn::write_tag(ss, "MANDIPASS-STORE-V1");
  nn::write_u64(ss, (1ULL << 20) + 1);  // implausible template count
  TemplateStore store;
  EXPECT_THROW(store.load(ss), SerializationError);
}

TEST(TemplateStoreIo, OversizedNameLengthThrows) {
  std::stringstream ss;
  nn::write_tag(ss, "MANDIPASS-STORE-V1");
  nn::write_u64(ss, 1);     // one template...
  nn::write_u64(ss, 5000);  // ...whose user name claims to be 5 KB
  TemplateStore store;
  EXPECT_THROW(store.load(ss), SerializationError);
}

TEST(TemplateStoreIo, OversizedTemplateDimensionThrows) {
  std::stringstream ss;
  nn::write_tag(ss, "MANDIPASS-STORE-V1");
  nn::write_u64(ss, 1);
  nn::write_tag(ss, "mallory");
  nn::write_u64(ss, 1);            // matrix_seed
  nn::write_u64(ss, 1);            // key_version
  nn::write_u64(ss, 1ULL << 40);   // implausible vector length
  TemplateStore store;
  EXPECT_THROW(store.load(ss), SerializationError);
}

TEST(TemplateStoreIo, CorruptedMagicByteThrows) {
  TemplateStore source;
  source.enroll("alice", make_template(1.0f, 1));
  std::stringstream ss;
  source.save(ss);
  std::string blob = ss.str();
  // The store magic spans the first 8 (length) + 18 (tag text) bytes; flip
  // each one and the load must fail loudly instead of misaligning.
  const std::size_t magic_bytes = 8 + 18;
  ASSERT_GE(blob.size(), magic_bytes);
  for (std::size_t i = 0; i < magic_bytes; ++i) {
    std::string corrupt = blob;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    std::stringstream bad(corrupt);
    TemplateStore target;
    EXPECT_THROW(target.load(bad), Error) << "no throw with byte " << i << " flipped";
  }
}

}  // namespace
}  // namespace mandipass::auth

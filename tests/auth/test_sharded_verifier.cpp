// Shard-invariance property tests for auth::ShardedVerifier (DESIGN.md
// §15): a sharded service is an optimisation, never a semantic — at 1, 2
// and 8 shards every decision and every distance must be bit-identical
// to a lone BatchVerifier fed the same traffic, for every request mix
// the PR 4 taxonomy can produce (genuine / impostor / unknown / empty /
// non-finite / wrong-dim), across enroll/revoke interleavings, and for
// batches stuffed with duplicate user ids.
#include "auth/sharded_verifier.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>
#include <vector>

#include "auth/batch_verifier.h"
#include "auth/gaussian_matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace mandipass::auth {
namespace {

constexpr std::size_t kDim = 32;

std::vector<float> random_print(Rng& rng) {
  std::vector<float> v(kDim);
  for (float& x : v) {
    x = static_cast<float>(rng.uniform());
  }
  return v;
}

StoredTemplate make_template(std::span<const float> print, std::uint64_t seed,
                             std::uint32_t version) {
  const GaussianMatrix g(seed, print.size());
  StoredTemplate tmpl;
  tmpl.data = g.transform(print);
  tmpl.matrix_seed = seed;
  tmpl.key_version = version;
  return tmpl;
}

std::string user_name(std::size_t u) { return "user" + std::to_string(u); }

void expect_same_decision(const BatchDecision& a, const BatchDecision& b, std::size_t i) {
  EXPECT_EQ(a.known, b.known) << "request " << i;
  EXPECT_EQ(a.status, b.status) << "request " << i;
  EXPECT_EQ(a.reason, b.reason) << "request " << i;
  EXPECT_EQ(a.key_version, b.key_version) << "request " << i;
  if (a.known && b.known) {
    EXPECT_EQ(a.decision.accepted, b.decision.accepted) << "request " << i;
    // Bit-identical, not approximately equal: the coalesced GEMM keeps
    // the per-element accumulation order of the per-request transform.
    EXPECT_EQ(a.decision.distance, b.decision.distance) << "request " << i;
  }
}

/// One reference BatchVerifier plus sharded engines at 1/2/8 shards,
/// kept in lockstep: every mutation is applied to all four.
struct MirroredEngines {
  BatchVerifier reference;
  ShardedVerifier s1{1};
  ShardedVerifier s2{2};
  ShardedVerifier s8{8};

  void enroll(const std::string& user, const StoredTemplate& tmpl) {
    reference.enroll(user, tmpl);
    s1.enroll(user, tmpl);
    s2.enroll(user, tmpl);
    s8.enroll(user, tmpl);
  }

  void revoke(const std::string& user) {
    reference.revoke(user);
    s1.revoke(user);
    s2.revoke(user);
    s8.revoke(user);
  }

  void expect_invariant(std::span<const VerifyRequest> requests, common::ThreadPool* pool) {
    const BatchResult want = reference.verify_batch(requests, pool);
    for (ShardedVerifier* engine : {&s1, &s2, &s8}) {
      const BatchResult got = engine->verify_batch(requests, pool);
      ASSERT_EQ(got.decisions.size(), want.decisions.size());
      for (std::size_t i = 0; i < want.decisions.size(); ++i) {
        expect_same_decision(got.decisions[i], want.decisions[i], i);
      }
      EXPECT_EQ(got.stats.requests, want.stats.requests);
      EXPECT_EQ(got.stats.known, want.stats.known);
      EXPECT_EQ(got.stats.accepted, want.stats.accepted);
      EXPECT_EQ(got.stats.unknown, want.stats.unknown);
      EXPECT_EQ(got.stats.invalid, want.stats.invalid);
    }
  }
};

TEST(ShardedVerifier, RoutingHashIsStableAcrossRuns) {
  // FNV-1a 64 with the standard offset basis / prime: pinned values, so
  // a platform or refactor that silently changes routing fails here
  // (baselines and cross-process shard maps depend on the function).
  EXPECT_EQ(user_shard_hash(""), 14695981039346656037ULL);
  EXPECT_EQ(user_shard_hash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(user_shard_hash("user0"), user_shard_hash("user0"));
  EXPECT_NE(user_shard_hash("user0"), user_shard_hash("user1"));

  const ShardedVerifier engine(8);
  std::set<std::size_t> hit;
  for (std::size_t u = 0; u < 100; ++u) {
    const std::size_t s = engine.shard_for(user_name(u));
    ASSERT_LT(s, 8u);
    EXPECT_EQ(s, user_shard_hash(user_name(u)) % 8);
    hit.insert(s);
  }
  // 100 FNV-hashed ids over 8 shards: every shard must see traffic.
  EXPECT_EQ(hit.size(), 8u);
}

TEST(ShardedVerifier, SingleRequestOpsRouteToOwningShard) {
  MirroredEngines engines;
  Rng rng(21);
  const auto print = random_print(rng);
  engines.enroll("alice", make_template(print, 5, 3));

  for (ShardedVerifier* engine : {&engines.s1, &engines.s2, &engines.s8}) {
    EXPECT_EQ(engine->size(), 1u);
    const auto snap = engine->snapshot("alice");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->key_version, 3u);
    const BatchDecision d = engine->verify_one("alice", print);
    const BatchDecision want = engines.reference.verify_one("alice", print);
    expect_same_decision(d, want, 0);
    EXPECT_FALSE(engine->verify_one("nobody", print).known);
  }

  engines.revoke("alice");
  for (ShardedVerifier* engine : {&engines.s1, &engines.s2, &engines.s8}) {
    EXPECT_EQ(engine->size(), 0u);
    EXPECT_FALSE(engine->snapshot("alice").has_value());
    EXPECT_FALSE(engine->revoke("alice"));
  }
}

TEST(ShardedVerifier, ShardInvariantForEveryRequestKind) {
  MirroredEngines engines;
  Rng rng(22);
  std::vector<std::vector<float>> prints;
  for (std::size_t u = 0; u < 16; ++u) {
    prints.push_back(random_print(rng));
    // Half the users share seed 900 (coalescable groups on each shard),
    // the rest get unique seeds (singleton groups).
    const std::uint64_t seed = (u % 2 == 0) ? 900 : 7000 + u;
    engines.enroll(user_name(u), make_template(prints[u], seed, static_cast<std::uint32_t>(u)));
  }

  std::vector<VerifyRequest> requests;
  for (std::size_t u = 0; u < 16; ++u) {
    requests.push_back({user_name(u), prints[u]});  // genuine
  }
  for (std::size_t u = 0; u < 16; ++u) {
    requests.push_back({user_name(u), prints[(u + 1) % 16]});  // impostor probe
  }
  requests.push_back({"ghost", prints[0]});  // unknown
  requests.push_back({"phantom", prints[1]});
  requests.push_back({user_name(0), {}});  // invalid: empty
  auto nan_probe = prints[2];
  nan_probe[kDim / 2] = std::numeric_limits<float>::quiet_NaN();
  requests.push_back({user_name(2), std::move(nan_probe)});  // invalid: non-finite
  requests.push_back({user_name(3), {1.0f, 2.0f, 3.0f}});    // invalid: wrong dim
  requests.push_back({"ghost", {}});  // unknown id AND empty probe -> Invalid first

  common::ThreadPool pool(4);
  engines.expect_invariant(requests, &pool);
  engines.expect_invariant(requests, nullptr);  // global pool path too
}

TEST(ShardedVerifier, ShardInvariantAcrossEnrollRevokeInterleavings) {
  MirroredEngines engines;
  Rng rng(23);
  std::vector<std::vector<float>> prints;
  for (std::size_t u = 0; u < 12; ++u) {
    prints.push_back(random_print(rng));
  }

  common::ThreadPool pool(3);
  Rng ops(0xC0FFEE);
  for (std::size_t round = 0; round < 8; ++round) {
    // Deterministic churn, applied identically to all four engines.
    for (std::size_t op = 0; op < 6; ++op) {
      const std::size_t u = ops.uniform_index(12);
      if (ops.bernoulli(0.3)) {
        engines.revoke(user_name(u));
      } else {
        const auto version = static_cast<std::uint32_t>(round * 6 + op);
        const std::uint64_t seed = 100 + (ops.bernoulli(0.5) ? 0 : u);
        engines.enroll(user_name(u), make_template(prints[u], seed, version));
      }
    }
    std::vector<VerifyRequest> requests;
    for (std::size_t u = 0; u < 12; ++u) {
      requests.push_back({user_name(u), prints[u]});
      if (u % 3 == 0) {
        requests.push_back({user_name(u), prints[(u + 5) % 12]});
      }
    }
    engines.expect_invariant(requests, &pool);
  }
}

// Regression (ISSUE 7 satellite): a batch that repeats the same user id
// many times lands every copy on one shard. The router must neither
// deadlock (it takes the shard lock once per shard, not per request) nor
// invert decision order (each decision is written at its request's own
// index) — and duplicates must agree with each other, because the whole
// shard batch is decided against one snapshot.
TEST(ShardedVerifier, DuplicateIdBatchesNeitherDeadlockNorReorder) {
  MirroredEngines engines;
  Rng rng(24);
  const auto alice = random_print(rng);
  const auto bob = random_print(rng);
  const auto carol = random_print(rng);
  engines.enroll("alice", make_template(alice, 11, 1));
  engines.enroll("bob", make_template(bob, 11, 2));  // same seed: coalesces with alice
  engines.enroll("carol", make_template(carol, 12, 3));

  // 64 requests, heavy duplication, statuses interleaved so an ordering
  // inversion is detectable: alice-genuine at i%4==0, alice-impostor at
  // i%4==1, bob-genuine at i%4==2, rotating junk at i%4==3.
  std::vector<VerifyRequest> requests;
  for (std::size_t i = 0; i < 64; ++i) {
    switch (i % 4) {
      case 0:
        requests.push_back({"alice", alice});
        break;
      case 1:
        requests.push_back({"alice", bob});
        break;
      case 2:
        requests.push_back({"bob", bob});
        break;
      default:
        if (i % 8 == 3) {
          requests.push_back({"carol", {}});  // invalid duplicate
        } else {
          requests.push_back({"ghost", carol});  // unknown duplicate
        }
        break;
    }
  }

  common::ThreadPool pool(4);
  engines.expect_invariant(requests, &pool);

  // Duplicates of the same (user, probe) inside one batch must be
  // decided identically — one snapshot per shard batch.
  const BatchResult got = engines.s8.verify_batch(requests, &pool);
  for (std::size_t i = 4; i < 64; i += 4) {
    expect_same_decision(got.decisions[i], got.decisions[0], i);
    EXPECT_EQ(got.decisions[i].decision.distance, got.decisions[0].decision.distance);
  }
}

TEST(ShardedVerifier, ThresholdAppliesToEveryShard) {
  ShardedVerifier engine(8, 0.5);
  EXPECT_DOUBLE_EQ(engine.threshold(), 0.5);
  Rng rng(25);
  std::vector<std::string> users;
  for (std::size_t u = 0; u < 16; ++u) {
    const auto print = random_print(rng);
    engine.enroll(user_name(u), make_template(print, 30 + u, 1));
    users.push_back(user_name(u));
  }
  engine.set_threshold(0.0);  // nothing short of an exact match passes
  EXPECT_DOUBLE_EQ(engine.threshold(), 0.0);
  Rng probe_rng(26);
  for (const auto& user : users) {
    const BatchDecision d = engine.verify_one(user, random_print(probe_rng));
    ASSERT_TRUE(d.known);
    EXPECT_FALSE(d.decision.accepted) << user;
  }
}

TEST(ShardedVerifier, EmptyBatchIsWellFormed) {
  ShardedVerifier engine(4);
  const BatchResult result = engine.verify_batch({});
  EXPECT_TRUE(result.decisions.empty());
  EXPECT_EQ(result.stats.requests, 0u);
  EXPECT_EQ(result.stats.known, 0u);
}

TEST(ShardedVerifier, BatchIsThreadCountInvariant) {
  ShardedVerifier engine(8);
  Rng rng(27);
  std::vector<VerifyRequest> requests;
  for (std::size_t u = 0; u < 24; ++u) {
    const auto print = random_print(rng);
    engine.enroll(user_name(u), make_template(print, 500 + u % 3, 1));
    auto probe = print;
    probe[u % kDim] += 0.1f;
    requests.push_back({user_name(u), std::move(probe)});
  }
  common::ThreadPool one(1);
  common::ThreadPool eight(8);
  const BatchResult serial = engine.verify_batch(requests, &one);
  const BatchResult parallel = engine.verify_batch(requests, &eight);
  ASSERT_EQ(serial.decisions.size(), parallel.decisions.size());
  for (std::size_t i = 0; i < serial.decisions.size(); ++i) {
    expect_same_decision(serial.decisions[i], parallel.decisions[i], i);
  }
}

}  // namespace
}  // namespace mandipass::auth

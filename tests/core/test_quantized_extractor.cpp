#include "core/quantized_extractor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "auth/cosine.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "nn/quantize.h"

namespace mandipass::core {
namespace {

ExtractorConfig tiny_config() {
  ExtractorConfig cfg;
  cfg.embedding_dim = 16;
  cfg.channels = {4, 6, 8};
  return cfg;
}

GradientArray random_gradient_array(std::uint64_t seed) {
  Rng rng(seed);
  GradientArray g;
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    g.positive[a].resize(30);
    g.negative[a].resize(30);
    for (std::size_t i = 0; i < 30; ++i) {
      g.positive[a][i] = rng.uniform(0.0, 0.5);
      g.negative[a][i] = rng.uniform(-0.5, 0.0);
    }
  }
  return g;
}

/// Trains briefly so BatchNorm's running statistics are non-trivial —
/// the quantiser folds them, so an untrained model would under-test it.
void warm_up(BiometricExtractor& ex) {
  LabeledGradientSet data;
  for (int c = 0; c < 2; ++c) {
    for (int s = 0; s < 16; ++s) {
      data.arrays.push_back(random_gradient_array(1000 + c * 100 + s));
      data.labels.push_back(c);
    }
  }
  ExtractorTrainer trainer(ex, {.epochs = 2});
  trainer.train(data);
}

TEST(QuantizeRows, RoundTripErrorBounded) {
  Rng rng(1);
  nn::Tensor w({8, 20});
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 0.3));
  }
  const auto q = nn::quantize_rows(w);
  // Per-row symmetric int8: error <= scale/2 = max|row| / 254.
  double max_scale = 0.0;
  for (float s : q.scales) {
    max_scale = std::max(max_scale, static_cast<double>(s));
  }
  EXPECT_LE(nn::quantization_error(w, q), max_scale * 0.5 + 1e-7);
}

TEST(QuantizeRows, ZeroRowHandled) {
  nn::Tensor w({2, 4});
  w.at2(1, 2) = 1.0f;
  const auto q = nn::quantize_rows(w);
  EXPECT_EQ(q.scales[0], 0.0f);
  EXPECT_EQ(nn::dequantize(q).at2(0, 0), 0.0f);
  EXPECT_NEAR(nn::dequantize(q).at2(1, 2), 1.0f, 1e-6);
}

TEST(QuantizedMatvec, MatchesFloatReference) {
  Rng rng(2);
  nn::Tensor w({5, 12});
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  const auto q = nn::quantize_rows(w);
  std::vector<float> x(12);
  std::vector<float> bias(5);
  for (auto& v : x) {
    v = static_cast<float>(rng.normal());
  }
  for (auto& v : bias) {
    v = static_cast<float>(rng.normal());
  }
  std::vector<float> y(5);
  nn::quantized_matvec(q, x.data(), bias.data(), y.data());
  for (std::size_t r = 0; r < 5; ++r) {
    float ref = bias[r];
    for (std::size_t c = 0; c < 12; ++c) {
      ref += w.at2(r, c) * x[c];
    }
    EXPECT_NEAR(y[r], ref, 0.05f);
  }
}

TEST(QuantizedExtractor, EmbeddingsTrackFloatModel) {
  BiometricExtractor ex(tiny_config());
  warm_up(ex);
  const QuantizedExtractor qex(ex);
  for (int t = 0; t < 5; ++t) {
    const auto g = random_gradient_array(50 + t);
    const auto f_print = ex.extract(g);
    const auto q_print = qex.extract(g);
    ASSERT_EQ(q_print.size(), f_print.size());
    EXPECT_GT(auth::cosine_similarity(f_print, q_print), 0.995);
  }
}

TEST(QuantizedExtractor, StorageRoughlyQuartersFloatModel) {
  BiometricExtractor ex(tiny_config());
  const QuantizedExtractor qex(ex);
  EXPECT_LT(qex.storage_bytes(), ex.storage_bytes() / 3);
  EXPECT_GT(qex.storage_bytes(), ex.storage_bytes() / 6);
}

TEST(QuantizedExtractor, EmbeddingInSigmoidRange) {
  BiometricExtractor ex(tiny_config());
  warm_up(ex);
  const QuantizedExtractor qex(ex);
  for (float v : qex.extract(random_gradient_array(60))) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(QuantizedExtractor, Deterministic) {
  BiometricExtractor ex(tiny_config());
  warm_up(ex);
  const QuantizedExtractor qex(ex);
  const auto g = random_gradient_array(70);
  EXPECT_EQ(qex.extract(g), qex.extract(g));
}

TEST(QuantizedExtractor, WrongHalfLengthThrows) {
  BiometricExtractor ex(tiny_config());
  const QuantizedExtractor qex(ex);
  GradientArray bad;
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    bad.positive[a].resize(10);
    bad.negative[a].resize(10);
  }
  EXPECT_THROW(qex.extract(bad), PreconditionError);
}

}  // namespace
}  // namespace mandipass::core

#include "core/signal_array.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mandipass::core {
namespace {

SignalArray make_array(std::size_t n) {
  SignalArray s;
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    s.axes[a].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.axes[a][i] = std::sin(0.3 * static_cast<double>(i) + static_cast<double>(a));
    }
  }
  return s;
}

TEST(GradientArray, DefaultHalfIsNOver2) {
  const auto g = build_gradient_array(make_array(60));
  EXPECT_EQ(g.half_length(), 30u);
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    EXPECT_EQ(g.positive[a].size(), 30u);
    EXPECT_EQ(g.negative[a].size(), 30u);
  }
}

TEST(GradientArray, ExplicitHalf) {
  const auto g = build_gradient_array(make_array(60), 15);
  EXPECT_EQ(g.half_length(), 15u);
}

TEST(GradientArray, PositiveSideNonNegativeNegativeSideNonPositive) {
  const auto g = build_gradient_array(make_array(60));
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    for (double v : g.positive[a]) {
      EXPECT_GE(v, 0.0);
    }
    for (double v : g.negative[a]) {
      EXPECT_LE(v, 0.0);
    }
  }
}

TEST(GradientArray, TooShortSegmentThrows) {
  SignalArray s;
  for (auto& ax : s.axes) {
    ax.resize(1);
  }
  EXPECT_THROW(build_gradient_array(s), PreconditionError);
}

TEST(PackBranches, Shapes) {
  std::vector<GradientArray> batch{build_gradient_array(make_array(60)),
                                   build_gradient_array(make_array(60))};
  const auto t = pack_branches(batch, 6);
  ASSERT_EQ(t.positive.rank(), 4u);
  EXPECT_EQ(t.positive.dim(0), 2u);
  EXPECT_EQ(t.positive.dim(1), 1u);
  EXPECT_EQ(t.positive.dim(2), 6u);
  EXPECT_EQ(t.positive.dim(3), 30u);
  EXPECT_EQ(t.negative.shape(), t.positive.shape());
}

TEST(PackBranches, AxisPrefixSelection) {
  // Fig. 11(a): involving k axes means the FIRST k in the canonical order.
  std::vector<GradientArray> batch{build_gradient_array(make_array(60))};
  const auto t3 = pack_branches(batch, 3);
  EXPECT_EQ(t3.positive.dim(2), 3u);
  // Axis 0 content matches the full pack's axis 0.
  const auto t6 = pack_branches(batch, 6);
  for (std::size_t w = 0; w < 30; ++w) {
    EXPECT_FLOAT_EQ(t3.positive.at4(0, 0, 0, w), t6.positive.at4(0, 0, 0, w));
  }
}

TEST(PackBranches, ValuesMatchSource) {
  std::vector<GradientArray> batch{build_gradient_array(make_array(60))};
  const auto t = pack_branches(batch, 6);
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t w = 0; w < 30; ++w) {
      EXPECT_FLOAT_EQ(t.positive.at4(0, 0, a, w),
                      static_cast<float>(batch[0].positive[a][w]));
      EXPECT_FLOAT_EQ(t.negative.at4(0, 0, a, w),
                      static_cast<float>(batch[0].negative[a][w]));
    }
  }
}

TEST(PackBranches, InvalidArgsThrow) {
  std::vector<GradientArray> batch{build_gradient_array(make_array(60))};
  EXPECT_THROW(pack_branches(std::vector<GradientArray>{}, 6), PreconditionError);
  EXPECT_THROW(pack_branches(batch, 0), PreconditionError);
  EXPECT_THROW(pack_branches(batch, 7), PreconditionError);
}

}  // namespace
}  // namespace mandipass::core

#include "core/extractor.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::core {
namespace {

GradientArray random_gradient_array(std::uint64_t seed, std::size_t half = 30) {
  Rng rng(seed);
  GradientArray g;
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    g.positive[a].resize(half);
    g.negative[a].resize(half);
    for (std::size_t i = 0; i < half; ++i) {
      g.positive[a][i] = rng.uniform(0.0, 0.5);
      g.negative[a][i] = rng.uniform(-0.5, 0.0);
    }
  }
  return g;
}

ExtractorConfig tiny_config() {
  ExtractorConfig cfg;
  cfg.embedding_dim = 16;
  cfg.channels = {4, 6, 8};
  return cfg;
}

TEST(Extractor, EmbeddingShape) {
  BiometricExtractor ex(tiny_config());
  std::vector<GradientArray> batch{random_gradient_array(1), random_gradient_array(2)};
  const auto t = pack_branches(batch, 6);
  const nn::Tensor e = ex.embed(t, false);
  EXPECT_EQ(e.dim(0), 2u);
  EXPECT_EQ(e.dim(1), 16u);
}

TEST(Extractor, EmbeddingInSigmoidRange) {
  BiometricExtractor ex(tiny_config());
  const auto print = ex.extract(random_gradient_array(3));
  ASSERT_EQ(print.size(), 16u);
  for (float v : print) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Extractor, DeterministicInference) {
  BiometricExtractor ex(tiny_config());
  const auto a = ex.extract(random_gradient_array(4));
  const auto b = ex.extract(random_gradient_array(4));
  EXPECT_EQ(a, b);
}

TEST(Extractor, DifferentInputsDifferentPrints) {
  BiometricExtractor ex(tiny_config());
  const auto a = ex.extract(random_gradient_array(5));
  const auto b = ex.extract(random_gradient_array(6));
  EXPECT_NE(a, b);
}

TEST(Extractor, SameSeedSameWeights) {
  BiometricExtractor a(tiny_config());
  BiometricExtractor b(tiny_config());
  EXPECT_EQ(a.extract(random_gradient_array(7)), b.extract(random_gradient_array(7)));
}

TEST(Extractor, HeadRequiredForLogits) {
  BiometricExtractor ex(tiny_config());
  std::vector<GradientArray> batch{random_gradient_array(8)};
  const auto t = pack_branches(batch, 6);
  EXPECT_THROW(ex.forward_logits(t, false), PreconditionError);
  ex.attach_head(5);
  const nn::Tensor logits = ex.forward_logits(t, false);
  EXPECT_EQ(logits.dim(1), 5u);
  EXPECT_TRUE(ex.has_head());
}

TEST(Extractor, AxisSubsetConfig) {
  ExtractorConfig cfg = tiny_config();
  cfg.axes = 3;
  BiometricExtractor ex(cfg);
  std::vector<GradientArray> batch{random_gradient_array(9)};
  const auto t = pack_branches(batch, 3);
  const nn::Tensor e = ex.embed(t, false);
  EXPECT_EQ(e.dim(1), 16u);
  // Packing with the wrong axis count must be rejected.
  const auto t6 = pack_branches(batch, 6);
  EXPECT_THROW(ex.embed(t6, false), ShapeError);
}

TEST(Extractor, ParameterCountMatchesArchitecture) {
  ExtractorConfig cfg = tiny_config();
  BiometricExtractor ex(cfg);
  // Two branches: conv(1->4) 4*1*9+4, bn 8, conv(4->6) 6*4*9+6, bn 12,
  // conv(6->8) 8*6*9+8, bn 16; trunk: (2*8*6*4)->16 FC + 16.
  const std::size_t conv_per_branch =
      (4 * 1 * 9 + 4) + 2 * 4 + (6 * 4 * 9 + 6) + 2 * 6 + (8 * 6 * 9 + 8) + 2 * 8;
  const std::size_t flat = 8 * 6 * 4;
  const std::size_t trunk = 2 * flat * 16 + 16;
  EXPECT_EQ(ex.parameter_count(), 2 * conv_per_branch + trunk);
  EXPECT_EQ(ex.storage_bytes(), ex.parameter_count() * sizeof(float));
}

TEST(Extractor, PaperScaleStorageIsMegabytes) {
  // With the paper's 512-dim MandiblePrint the model lands in the single-
  // digit-MB range the paper reports (~5 MB).
  ExtractorConfig cfg;
  cfg.embedding_dim = 512;
  BiometricExtractor ex(cfg);
  EXPECT_GT(ex.storage_bytes(), 1u << 20);
  EXPECT_LT(ex.storage_bytes(), 16u << 20);
}

TEST(Extractor, SaveLoadRoundTrip) {
  BiometricExtractor a(tiny_config());
  a.attach_head(4);
  std::stringstream ss;
  a.save(ss);
  BiometricExtractor b(tiny_config());
  b.load(ss);
  EXPECT_TRUE(b.has_head());
  EXPECT_EQ(a.extract(random_gradient_array(10)), b.extract(random_gradient_array(10)));
}

TEST(Extractor, LoadConfigMismatchThrows) {
  BiometricExtractor a(tiny_config());
  std::stringstream ss;
  a.save(ss);
  ExtractorConfig other = tiny_config();
  other.embedding_dim = 32;
  BiometricExtractor b(other);
  EXPECT_THROW(b.load(ss), SerializationError);
}

TEST(Extractor, InvalidConfigThrows) {
  ExtractorConfig bad = tiny_config();
  bad.axes = 0;
  EXPECT_THROW(BiometricExtractor{bad}, PreconditionError);
  ExtractorConfig bad2 = tiny_config();
  bad2.half_length = 2;
  EXPECT_THROW(BiometricExtractor{bad2}, PreconditionError);
  BiometricExtractor ok(tiny_config());
  EXPECT_THROW(ok.attach_head(1), PreconditionError);
}

}  // namespace
}  // namespace mandipass::core

// The determinism contract of DESIGN.md §9: parallel inference and the
// parallel metric sweeps must be *bit-identical* to their serial forms —
// every output element is produced by exactly one thread with the serial
// per-element accumulation order, so the thread count must never leak
// into results. These tests pin that contract for 1, 2 and 8 threads
// (8 oversubscribes small CI machines on purpose: correctness must not
// depend on the chunk/lane geometry).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "auth/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/extractor.h"

namespace mandipass::core {
namespace {

GradientArray random_gradient_array(Rng& rng, std::size_t half) {
  GradientArray g;
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    g.positive[a].resize(half);
    g.negative[a].resize(half);
    for (std::size_t i = 0; i < half; ++i) {
      g.positive[a][i] = rng.uniform();
      g.negative[a][i] = -rng.uniform();
    }
  }
  return g;
}

std::vector<GradientArray> random_batch(std::size_t count, std::size_t half,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<GradientArray> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(random_gradient_array(rng, half));
  }
  return batch;
}

bool bitwise_equal(const std::vector<std::vector<float>>& a,
                   const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size() ||
        std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

class ParallelDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { common::ThreadPool::set_global_threads(1); }
};

TEST_F(ParallelDeterminism, ExtractBatchIsBitIdenticalAcrossThreadCounts) {
  ExtractorConfig config;
  config.half_length = 30;
  config.embedding_dim = 48;
  config.channels = {4, 6, 8};
  BiometricExtractor extractor(config);
  // 150 samples spans two extract_batch chunks (chunk size 128).
  const auto batch = random_batch(150, config.half_length, 7);

  common::ThreadPool::set_global_threads(1);
  const auto serial = extractor.extract_batch(batch);
  ASSERT_EQ(serial.size(), batch.size());

  common::ThreadPool::set_global_threads(2);
  EXPECT_TRUE(bitwise_equal(serial, extractor.extract_batch(batch)));

  common::ThreadPool::set_global_threads(8);
  EXPECT_TRUE(bitwise_equal(serial, extractor.extract_batch(batch)));
}

TEST_F(ParallelDeterminism, EmbedSingleVersusBatchedSamplesAgree) {
  ExtractorConfig config;
  config.half_length = 30;
  config.embedding_dim = 32;
  config.channels = {4, 4, 4};
  BiometricExtractor extractor(config);
  const auto batch = random_batch(9, config.half_length, 11);

  common::ThreadPool::set_global_threads(8);
  const auto batched = extractor.extract_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto single = extractor.extract(batch[i]);
    ASSERT_EQ(single.size(), batched[i].size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      // Same reduction order; only the batch packing differs.
      EXPECT_FLOAT_EQ(single[j], batched[i][j]) << "sample " << i << " dim " << j;
    }
  }
}

TEST_F(ParallelDeterminism, EerIsThreadCountInvariant) {
  Rng rng(13);
  std::vector<double> genuine;
  std::vector<double> impostor;
  for (std::size_t i = 0; i < 4000; ++i) {
    genuine.push_back(rng.normal(0.48, 0.08));
    impostor.push_back(rng.normal(0.70, 0.07));
  }

  common::ThreadPool::set_global_threads(1);
  const auto serial = auth::compute_eer(genuine, impostor);

  for (const std::size_t threads : {2UL, 8UL}) {
    common::ThreadPool::set_global_threads(threads);
    const auto parallel = auth::compute_eer(genuine, impostor);
    // The sweep is element-wise identical; the issue's contract allows
    // 1e-9 but the implementation delivers exact equality.
    EXPECT_EQ(serial.eer, parallel.eer) << threads << " threads";
    EXPECT_EQ(serial.threshold, parallel.threshold) << threads << " threads";
  }
}

TEST_F(ParallelDeterminism, RocCurveIsThreadCountInvariant) {
  Rng rng(17);
  std::vector<double> genuine;
  std::vector<double> impostor;
  for (std::size_t i = 0; i < 1000; ++i) {
    genuine.push_back(rng.normal(0.5, 0.1));
    impostor.push_back(rng.normal(0.7, 0.1));
  }

  common::ThreadPool::set_global_threads(1);
  const auto serial = auth::roc_curve(genuine, impostor, 0.3, 0.9, 101);

  common::ThreadPool::set_global_threads(8);
  const auto parallel = auth::roc_curve(genuine, impostor, 0.3, 0.9, 101);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].threshold, parallel[i].threshold);
    EXPECT_EQ(serial[i].far, parallel[i].far);
    EXPECT_EQ(serial[i].frr, parallel[i].frr);
  }
}

}  // namespace
}  // namespace mandipass::core

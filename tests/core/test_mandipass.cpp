#include "core/mandipass.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"

namespace mandipass::core {
namespace {

/// Fixture with an UNTRAINED tiny extractor: enough for API-level tests
/// (genuine accept/impostor reject quality is covered by the integration
/// suite with a trained model).
class MandiPassTest : public ::testing::Test {
 protected:
  MandiPassTest() : rng_(11), pop_(2024) {
    ExtractorConfig cfg;
    cfg.embedding_dim = 32;
    cfg.channels = {4, 6, 8};
    extractor_ = std::make_shared<BiometricExtractor>(cfg);
  }

  imu::RawRecording record(const vibration::PersonProfile& person) {
    vibration::SessionRecorder rec(person, rng_);
    return rec.record(vibration::SessionConfig{});
  }

  Rng rng_;
  vibration::PopulationGenerator pop_;
  std::shared_ptr<BiometricExtractor> extractor_;
};

TEST_F(MandiPassTest, EnrollStoresTemplate) {
  MandiPass mp(extractor_);
  const auto person = pop_.sample();
  mp.enroll("alice", record(person));
  EXPECT_EQ(mp.store().size(), 1u);
  EXPECT_TRUE(mp.store().lookup("alice").has_value());
}

TEST_F(MandiPassTest, VerifyUnknownUserIsNullopt) {
  MandiPass mp(extractor_);
  const auto person = pop_.sample();
  EXPECT_FALSE(mp.verify("ghost", record(person)).has_value());
}

TEST_F(MandiPassTest, VerifyKnownUserReturnsDecision) {
  MandiPass mp(extractor_);
  const auto person = pop_.sample();
  mp.enroll("alice", record(person));
  const auto d = mp.verify("alice", record(person));
  ASSERT_TRUE(d.has_value());
  EXPECT_GE(d->distance, 0.0);
  EXPECT_LE(d->distance, 2.0);
}

TEST_F(MandiPassTest, RekeyChangesMatrixSeedAndBumpsVersion) {
  MandiPass mp(extractor_);
  const auto person = pop_.sample();
  mp.enroll("alice", record(person));
  const auto before = mp.store().lookup("alice");
  mp.rekey("alice", record(person));
  const auto after = mp.store().lookup("alice");
  ASSERT_TRUE(before.has_value() && after.has_value());
  EXPECT_NE(before->matrix_seed, after->matrix_seed);
  EXPECT_EQ(after->key_version, before->key_version + 1);
  EXPECT_NE(before->data, after->data);
}

TEST_F(MandiPassTest, RekeyUnknownUserThrows) {
  MandiPass mp(extractor_);
  const auto person = pop_.sample();
  EXPECT_THROW(mp.rekey("ghost", record(person)), PreconditionError);
}

TEST_F(MandiPassTest, RevokeRemovesUser) {
  MandiPass mp(extractor_);
  const auto person = pop_.sample();
  mp.enroll("alice", record(person));
  EXPECT_TRUE(mp.revoke("alice"));
  EXPECT_FALSE(mp.verify("alice", record(person)).has_value());
}

TEST_F(MandiPassTest, ExtractPrintHasEmbeddingDim) {
  MandiPass mp(extractor_);
  const auto person = pop_.sample();
  const auto print = mp.extract_print(record(person));
  EXPECT_EQ(print.size(), 32u);
}

TEST_F(MandiPassTest, SilentRecordingThrowsSignalError) {
  MandiPass mp(extractor_);
  imu::RawRecording silent;
  silent.sample_rate_hz = 350.0;
  for (auto& axis : silent.axes) {
    axis.assign(300, 0.0);
  }
  EXPECT_THROW(mp.enroll("alice", silent), SignalError);
}

TEST_F(MandiPassTest, ThresholdAdjustable) {
  MandiPass mp(extractor_);
  mp.set_threshold(0.1);
  EXPECT_DOUBLE_EQ(mp.verifier().threshold(), 0.1);
}

TEST_F(MandiPassTest, NullExtractorThrows) {
  EXPECT_THROW(MandiPass(nullptr), PreconditionError);
}

TEST_F(MandiPassTest, TemplatesOfSameUserDifferAcrossEnrollments) {
  // Fresh Gaussian matrix per enrollment: even identical prints seal to
  // different cancelable templates.
  MandiPass mp(extractor_);
  const auto person = pop_.sample();
  const auto rec = record(person);
  mp.enroll("a", rec);
  mp.enroll("b", rec);
  EXPECT_NE(mp.store().lookup("a")->data, mp.store().lookup("b")->data);
}

}  // namespace
}  // namespace mandipass::core

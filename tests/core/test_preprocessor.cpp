#include "core/preprocessor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "vibration/population.h"
#include "vibration/session.h"

namespace mandipass::core {
namespace {

class PreprocessorTest : public ::testing::Test {
 protected:
  PreprocessorTest() : rng_(7), pop_(2024) {}

  imu::RawRecording record_one() {
    vibration::SessionRecorder rec(pop_.sample(), rng_);
    return rec.record(vibration::SessionConfig{});
  }

  Rng rng_;
  vibration::PopulationGenerator pop_;
};

TEST_F(PreprocessorTest, ProducesSixNormalisedSegments) {
  const Preprocessor prep;
  const auto rec = record_one();
  const SignalArray array = prep.process(rec);
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    ASSERT_EQ(array.axes[a].size(), kDefaultSegmentLength);
    const double lo = min_value(array.axes[a]);
    const double hi = max_value(array.axes[a]);
    EXPECT_GE(lo, 0.0);
    EXPECT_LE(hi, 1.0);
  }
}

TEST_F(PreprocessorTest, MinMaxHitsBothEnds) {
  const Preprocessor prep;
  const SignalArray array = prep.process(record_one());
  for (std::size_t a = 0; a < 3; ++a) {  // accel axes carry real signal
    EXPECT_NEAR(min_value(array.axes[a]), 0.0, 1e-12);
    EXPECT_NEAR(max_value(array.axes[a]), 1.0, 1e-12);
  }
}

TEST_F(PreprocessorTest, OnsetDetectedInsideVoicedRegion) {
  const Preprocessor prep;
  const auto rec = record_one();
  const auto onset = prep.detect_onset(rec);
  ASSERT_TRUE(onset.has_value());
  // Voicing starts at 0.30 s = sample 105 (window-quantised).
  EXPECT_GE(*onset, 90u);
  EXPECT_LE(*onset, 130u);
}

TEST_F(PreprocessorTest, SilenceOnlyRecordingThrows) {
  const Preprocessor prep;
  vibration::SessionRecorder rec(pop_.sample(), rng_);
  vibration::SessionConfig cfg;
  auto recording = rec.record(cfg);
  // Chop the recording before the voicing begins.
  for (auto& axis : recording.axes) {
    axis.resize(90);
  }
  EXPECT_THROW(prep.process(recording), SignalError);
}

TEST_F(PreprocessorTest, OnsetTooLateThrows) {
  const Preprocessor prep;
  auto recording = record_one();
  const auto onset = prep.detect_onset(recording);
  ASSERT_TRUE(onset.has_value());
  // Keep only a handful of samples past the onset — not enough for n = 60.
  for (auto& axis : recording.axes) {
    axis.resize(*onset + 20);
  }
  EXPECT_THROW(prep.process(recording), SignalError);
}

TEST_F(PreprocessorTest, ShortRecordingThrows) {
  const Preprocessor prep;
  imu::RawRecording tiny;
  tiny.sample_rate_hz = 350.0;
  for (auto& axis : tiny.axes) {
    axis.resize(10, 0.0);
  }
  EXPECT_THROW(prep.process(tiny), SignalError);
}

TEST_F(PreprocessorTest, AllFlatRecordingThrowsNoOnset) {
  // Every axis constant (device on a table): no window crosses the onset
  // threshold, so process() must take the no-onset path, not crash.
  const Preprocessor prep;
  imu::RawRecording flat;
  flat.sample_rate_hz = 350.0;
  for (auto& axis : flat.axes) {
    axis.assign(300, 1234.0);
  }
  EXPECT_THROW(prep.process(flat), SignalError);
}

TEST_F(PreprocessorTest, AllSaturatedRecordingProcesses) {
  // Rail-to-rail clipping on every axis: the onset lands in window 0 and
  // the full pipeline still produces normalised segments (no OOB reads,
  // no division by zero in normalisation).
  const Preprocessor prep;
  imu::RawRecording sat;
  sat.sample_rate_hz = 350.0;
  for (auto& axis : sat.axes) {
    axis.resize(300);
    for (std::size_t i = 0; i < axis.size(); ++i) {
      axis[i] = i % 2 == 0 ? 32767.0 : -32767.0;
    }
  }
  const SignalArray array = prep.process(sat);
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    ASSERT_EQ(array.axes[a].size(), kDefaultSegmentLength);
    EXPECT_GE(min_value(array.axes[a]), 0.0);
    EXPECT_LE(max_value(array.axes[a]), 1.0);
  }
}

TEST_F(PreprocessorTest, OnsetInFinalWindowThrowsShortSegment) {
  // Vibration confined to the last 10 samples: detection succeeds but a
  // 60-sample segment cannot fit — the short-segment SignalError path,
  // with no reads past the end of any axis.
  PreprocessorConfig cfg;
  cfg.peak_align_radius = 0;
  const Preprocessor prep(cfg);
  imu::RawRecording rec;
  rec.sample_rate_hz = 350.0;
  for (auto& axis : rec.axes) {
    axis.assign(300, 0.0);
    for (std::size_t i = 290; i < 300; ++i) {
      axis[i] = i % 2 == 0 ? 3000.0 : -3000.0;
    }
  }
  const auto onset = prep.detect_onset(rec);
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(*onset, 290u);
  EXPECT_THROW(prep.process(rec), SignalError);
}

TEST_F(PreprocessorTest, HighPassRemovesDcOffset) {
  // Gravity puts a large DC on the raw axes; after preprocessing the
  // segment is normalised, but the *shape* must not be a flat line pinned
  // by the DC (std of the normalised segment is substantial).
  const Preprocessor prep;
  const SignalArray array = prep.process(record_one());
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_GT(stddev(array.axes[a]), 0.1);
  }
}

TEST_F(PreprocessorTest, GlitchDoesNotDominateSegment) {
  // Inject a massive outlier right after the onset; MAD replacement must
  // keep it from crushing the rest of the normalised segment to ~0.
  const Preprocessor prep;
  auto recording = record_one();
  const auto onset = prep.detect_onset(recording);
  ASSERT_TRUE(onset.has_value());
  recording.axes[0][*onset + 10] = 32767.0;
  const SignalArray array = prep.process(recording);
  // Without outlier handling, one sample would be 1.0 and the rest near a
  // constant; with it, the segment keeps healthy variance.
  EXPECT_GT(stddev(array.axes[0]), 0.1);
}

TEST_F(PreprocessorTest, PeakAlignmentStaysNearCoarseOnset) {
  PreprocessorConfig cfg;
  cfg.peak_align_radius = 12;
  const Preprocessor prep(cfg);
  const auto rec = record_one();
  EXPECT_NO_THROW(prep.process(rec));
}

TEST_F(PreprocessorTest, CustomSegmentLength) {
  PreprocessorConfig cfg;
  cfg.segment_length = 40;
  const Preprocessor prep(cfg);
  const SignalArray array = prep.process(record_one());
  EXPECT_EQ(array.segment_length(), 40u);
}

TEST_F(PreprocessorTest, InvalidConfigThrows) {
  PreprocessorConfig bad;
  bad.segment_length = 2;
  EXPECT_THROW(Preprocessor{bad}, PreconditionError);
  PreprocessorConfig bad2;
  bad2.highpass_hz = 0.0;
  EXPECT_THROW(Preprocessor{bad2}, PreconditionError);
}

}  // namespace
}  // namespace mandipass::core

#include "core/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::core {
namespace {

/// Synthetic, cleanly separable gradient arrays: class k has its positive
/// gradients biased by k-dependent structure plus noise.
LabeledGradientSet synthetic_set(std::size_t classes, std::size_t per_class,
                                 std::uint64_t seed) {
  Rng rng(seed);
  LabeledGradientSet data;
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t s = 0; s < per_class; ++s) {
      GradientArray g;
      for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
        g.positive[a].resize(30);
        g.negative[a].resize(30);
        for (std::size_t i = 0; i < 30; ++i) {
          const double pattern =
              0.4 * std::sin(0.2 * static_cast<double>(i * (c + 1)) + static_cast<double>(a));
          g.positive[a][i] = 0.5 + pattern + rng.normal(0.0, 0.05);
          g.negative[a][i] = -0.5 + 0.5 * pattern + rng.normal(0.0, 0.05);
        }
      }
      data.arrays.push_back(std::move(g));
      data.labels.push_back(static_cast<std::uint32_t>(c));
    }
  }
  return data;
}

ExtractorConfig tiny_config() {
  ExtractorConfig cfg;
  cfg.embedding_dim = 16;
  cfg.channels = {4, 6, 8};
  return cfg;
}

TEST(Trainer, LearnsSeparableClasses) {
  const auto data = synthetic_set(3, 40, 1);
  Rng rng(2);
  const auto split = split_gradient_set(data, 0.8, rng);
  BiometricExtractor ex(tiny_config());
  ExtractorTrainer trainer(ex, {.epochs = 8, .batch_size = 16, .lr = 3e-3});
  const double train_acc = trainer.train(split.train);
  EXPECT_GT(train_acc, 0.9);
  EXPECT_GT(trainer.evaluate_accuracy(split.test), 0.9);
}

TEST(Trainer, EpochCallbackFires) {
  const auto data = synthetic_set(2, 20, 3);
  BiometricExtractor ex(tiny_config());
  std::size_t calls = 0;
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.on_epoch = [&calls](std::size_t, double, double) { ++calls; };
  ExtractorTrainer trainer(ex, cfg);
  trainer.train(data);
  EXPECT_EQ(calls, 3u);
}

TEST(Trainer, ClassCount) {
  const auto data = synthetic_set(4, 2, 4);
  EXPECT_EQ(data.class_count(), 4u);
  EXPECT_EQ(data.size(), 8u);
}

TEST(Trainer, SplitPreservesTotal) {
  const auto data = synthetic_set(2, 25, 5);
  Rng rng(6);
  const auto split = split_gradient_set(data, 0.8, rng);
  EXPECT_EQ(split.train.size(), 40u);
  EXPECT_EQ(split.test.size(), 10u);
}

TEST(Trainer, EmbedAllRowsMatchInputs) {
  const auto data = synthetic_set(2, 10, 7);
  BiometricExtractor ex(tiny_config());
  const auto embeddings = embed_all(ex, data);
  ASSERT_EQ(embeddings.size(), data.size());
  for (const auto& row : embeddings) {
    EXPECT_EQ(row.size(), 16u);
  }
  // embed_all must agree with one-at-a-time extraction.
  const auto single = ex.extract(data.arrays[3]);
  for (std::size_t j = 0; j < single.size(); ++j) {
    EXPECT_NEAR(embeddings[3][j], single[j], 1e-5);
  }
}

TEST(Trainer, DeterministicTraining) {
  const auto data = synthetic_set(2, 20, 8);
  BiometricExtractor a(tiny_config());
  BiometricExtractor b(tiny_config());
  ExtractorTrainer ta(a, {.epochs = 2, .seed = 11});
  ExtractorTrainer tb(b, {.epochs = 2, .seed = 11});
  EXPECT_DOUBLE_EQ(ta.train(data), tb.train(data));
  EXPECT_EQ(a.extract(data.arrays[0]), b.extract(data.arrays[0]));
}

TEST(Trainer, InputNoiseAugmentationStillLearns) {
  const auto data = synthetic_set(2, 30, 9);
  BiometricExtractor ex(tiny_config());
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.input_noise = 0.05;
  ExtractorTrainer trainer(ex, cfg);
  EXPECT_GT(trainer.train(data), 0.85);
}

TEST(Trainer, SingleClassThrows) {
  const auto data = synthetic_set(1, 10, 10);
  BiometricExtractor ex(tiny_config());
  ExtractorTrainer trainer(ex, {.epochs = 1});
  EXPECT_THROW(trainer.train(data), PreconditionError);
}

TEST(Trainer, EvaluateWithoutHeadThrows) {
  const auto data = synthetic_set(2, 4, 11);
  BiometricExtractor ex(tiny_config());
  ExtractorTrainer trainer(ex, {.epochs = 1});
  EXPECT_THROW(trainer.evaluate_accuracy(data), PreconditionError);
}

TEST(Trainer, InvalidConfigThrows) {
  BiometricExtractor ex(tiny_config());
  EXPECT_THROW(ExtractorTrainer(ex, {.epochs = 0}), PreconditionError);
  EXPECT_THROW(ExtractorTrainer(ex, {.epochs = 1, .batch_size = 0}), PreconditionError);
}

}  // namespace
}  // namespace mandipass::core

#include "core/dataset_builder.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mandipass::core {
namespace {

TEST(DatasetBuilder, CollectsRequestedCounts) {
  Rng rng(1);
  vibration::PopulationGenerator pop(2024);
  const auto people = pop.sample_population(3);
  CollectionConfig cfg;
  cfg.arrays_per_person = 5;
  const auto set = collect_signal_set(people, cfg, rng);
  EXPECT_EQ(set.size(), 15u);
  // Labels are person indices with 5 arrays each.
  std::array<int, 3> counts{};
  for (std::uint32_t label : set.labels) {
    ASSERT_LT(label, 3u);
    ++counts[label];
  }
  for (int c : counts) {
    EXPECT_EQ(c, 5);
  }
}

TEST(DatasetBuilder, ArraysHaveConfiguredLength) {
  Rng rng(2);
  vibration::PopulationGenerator pop(2024);
  const auto people = pop.sample_population(1);
  CollectionConfig cfg;
  cfg.arrays_per_person = 3;
  cfg.prep.segment_length = 40;
  const auto set = collect_signal_set(people, cfg, rng);
  for (const auto& arr : set.arrays) {
    EXPECT_EQ(arr.segment_length(), 40u);
  }
}

TEST(DatasetBuilder, GradientConversionPreservesLabels) {
  Rng rng(3);
  vibration::PopulationGenerator pop(2024);
  const auto people = pop.sample_population(2);
  CollectionConfig cfg;
  cfg.arrays_per_person = 4;
  const auto signals = collect_signal_set(people, cfg, rng);
  const auto grads = to_gradient_set(signals);
  EXPECT_EQ(grads.size(), signals.size());
  EXPECT_EQ(grads.labels, signals.labels);
  EXPECT_EQ(grads.arrays[0].half_length(), 30u);
}

TEST(DatasetBuilder, OneCallConvenience) {
  Rng rng(4);
  vibration::PopulationGenerator pop(2024);
  const auto people = pop.sample_population(2);
  CollectionConfig cfg;
  cfg.arrays_per_person = 3;
  const auto set = collect_gradient_set(people, cfg, rng);
  EXPECT_EQ(set.size(), 6u);
  EXPECT_EQ(set.class_count(), 2u);
}

TEST(DatasetBuilder, ImpossibleSessionConfigThrows) {
  Rng rng(5);
  vibration::PopulationGenerator pop(2024);
  const auto people = pop.sample_population(1);
  CollectionConfig cfg;
  cfg.arrays_per_person = 2;
  cfg.max_attempt_factor = 2;
  // Voicing window too short to ever fit a 60-sample segment after onset.
  cfg.session.voice_s = 0.05;
  cfg.session.tail_s = 0.0;
  EXPECT_THROW(collect_signal_set(people, cfg, rng), SignalError);
}

TEST(DatasetBuilder, EmptyPopulationThrows) {
  Rng rng(6);
  CollectionConfig cfg;
  EXPECT_THROW(collect_signal_set({}, cfg, rng), PreconditionError);
}

}  // namespace
}  // namespace mandipass::core

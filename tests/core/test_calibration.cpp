#include "core/calibration.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/mandipass.h"

namespace mandipass::core {
namespace {

ExtractorConfig tiny_config() {
  ExtractorConfig cfg;
  cfg.embedding_dim = 16;
  cfg.channels = {4, 6, 8};
  return cfg;
}

TEST(Calibration, ReturnsValidOperatingPoint) {
  BiometricExtractor ex(tiny_config());  // untrained: structure-only check
  vibration::PopulationGenerator pop(3);
  const auto cohort = pop.sample_population(3);
  CollectionConfig cc;
  cc.arrays_per_person = 6;
  Rng rng(4);
  const auto op = calibrate_threshold(ex, cohort, cc, rng);
  EXPECT_GE(op.threshold, 0.0);
  EXPECT_LE(op.threshold, 2.0);
  EXPECT_GE(op.eer, 0.0);
  EXPECT_LE(op.eer, 1.0);
}

TEST(Calibration, DeterministicGivenSeeds) {
  BiometricExtractor ex(tiny_config());
  vibration::PopulationGenerator pop(5);
  const auto cohort = pop.sample_population(3);
  CollectionConfig cc;
  cc.arrays_per_person = 5;
  Rng rng1(6);
  Rng rng2(6);
  const auto a = calibrate_threshold(ex, cohort, cc, rng1);
  const auto b = calibrate_threshold(ex, cohort, cc, rng2);
  EXPECT_DOUBLE_EQ(a.threshold, b.threshold);
  EXPECT_DOUBLE_EQ(a.eer, b.eer);
}

TEST(Calibration, SinglePersonCohortThrows) {
  BiometricExtractor ex(tiny_config());
  vibration::PopulationGenerator pop(7);
  const auto cohort = pop.sample_population(1);
  CollectionConfig cc;
  cc.arrays_per_person = 4;
  Rng rng(8);
  EXPECT_THROW(calibrate_threshold(ex, cohort, cc, rng), PreconditionError);
}

TEST(MultiEnroll, AveragesUsableRecordings) {
  auto extractor = std::make_shared<BiometricExtractor>(tiny_config());
  MandiPass system(extractor);
  Rng rng(9);
  vibration::PopulationGenerator pop(10);
  vibration::SessionRecorder rec(pop.sample(), rng);
  const auto recordings = rec.record_many(vibration::SessionConfig{}, 4);
  system.enroll("alice", recordings);
  EXPECT_TRUE(system.store().lookup("alice").has_value());
}

TEST(MultiEnroll, SkipsUnusableKeepsGood) {
  auto extractor = std::make_shared<BiometricExtractor>(tiny_config());
  MandiPass system(extractor);
  Rng rng(11);
  vibration::PopulationGenerator pop(12);
  vibration::SessionRecorder rec(pop.sample(), rng);
  std::vector<imu::RawRecording> recordings = rec.record_many(vibration::SessionConfig{}, 2);
  imu::RawRecording silent;
  silent.sample_rate_hz = 350.0;
  for (auto& axis : silent.axes) {
    axis.assign(300, 0.0);
  }
  recordings.push_back(silent);  // unusable, must be skipped
  system.enroll("alice", recordings);
  EXPECT_TRUE(system.store().lookup("alice").has_value());
}

TEST(MultiEnroll, AllUnusableThrows) {
  auto extractor = std::make_shared<BiometricExtractor>(tiny_config());
  MandiPass system(extractor);
  imu::RawRecording silent;
  silent.sample_rate_hz = 350.0;
  for (auto& axis : silent.axes) {
    axis.assign(300, 0.0);
  }
  const std::vector<imu::RawRecording> recordings{silent, silent};
  EXPECT_THROW(system.enroll("alice", recordings), SignalError);
}

TEST(MultiEnroll, EmptyListThrows) {
  auto extractor = std::make_shared<BiometricExtractor>(tiny_config());
  MandiPass system(extractor);
  EXPECT_THROW(system.enroll("alice", std::span<const imu::RawRecording>{}),
               PreconditionError);
}

}  // namespace
}  // namespace mandipass::core

// Property sweep over the vibration simulator: invariants that must hold
// for EVERY person and EVERY session condition, not just the defaults —
// the propagation-decay ordering of Fig. 1, onset detectability, and
// finite bounded outputs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "core/preprocessor.h"
#include "vibration/population.h"
#include "vibration/session.h"

namespace mandipass::vibration {
namespace {

struct ConditionCase {
  Activity activity;
  Food food;
  double tone;
  EarSide side;
  const char* name;
};

class SimulatorSweep : public ::testing::TestWithParam<ConditionCase> {};

double voiced_std(const imu::RawRecording& rec, std::size_t axis) {
  std::vector<double> seg(rec.axes[axis].begin() + 115, rec.axes[axis].begin() + 225);
  return mandipass::stddev(seg);
}

TEST_P(SimulatorSweep, SessionsRemainProcessable) {
  const auto p = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(p.tone * 100));
  PopulationGenerator pop(808);
  const core::Preprocessor prep;
  int processed = 0;
  const int people = 6;
  for (int i = 0; i < people; ++i) {
    SessionRecorder rec(pop.sample(), rng);
    SessionConfig cfg;
    cfg.activity = p.activity;
    cfg.food = p.food;
    cfg.tone_multiplier = p.tone;
    cfg.ear_side = p.side;
    for (int attempt = 0; attempt < 4; ++attempt) {
      try {
        const auto array = prep.process(rec.record(cfg));
        for (const auto& seg : array.axes) {
          for (double v : seg) {
            ASSERT_TRUE(std::isfinite(v));
            ASSERT_GE(v, 0.0);
            ASSERT_LE(v, 1.0);
          }
        }
        ++processed;
        break;
      } catch (const SignalError&) {
        continue;
      }
    }
  }
  EXPECT_GE(processed, people - 1);  // at most one person needs >4 retries
}

TEST_P(SimulatorSweep, SignalsFiniteAndWithinFullScale) {
  const auto p = GetParam();
  Rng rng(77);
  PopulationGenerator pop(909);
  SessionRecorder rec(pop.sample(), rng);
  SessionConfig cfg;
  cfg.activity = p.activity;
  cfg.food = p.food;
  cfg.tone_multiplier = p.tone;
  cfg.ear_side = p.side;
  const auto r = rec.record(cfg);
  for (const auto& axis : r.axes) {
    for (double v : axis) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_LE(std::abs(v), 32767.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, SimulatorSweep,
    ::testing::Values(
        ConditionCase{Activity::Static, Food::None, 1.0, EarSide::Right, "baseline"},
        ConditionCase{Activity::Walk, Food::None, 1.0, EarSide::Right, "walk"},
        ConditionCase{Activity::Run, Food::None, 1.0, EarSide::Right, "run"},
        ConditionCase{Activity::Static, Food::Lollipop, 1.0, EarSide::Right, "lollipop"},
        ConditionCase{Activity::Static, Food::Water, 1.0, EarSide::Right, "water"},
        ConditionCase{Activity::Static, Food::None, 1.15, EarSide::Right, "high_tone"},
        ConditionCase{Activity::Static, Food::None, 0.87, EarSide::Right, "low_tone"},
        ConditionCase{Activity::Static, Food::None, 1.0, EarSide::Left, "left_ear"}),
    [](const ::testing::TestParamInfo<ConditionCase>& info) { return info.param.name; });

// Per-person sweep of the Fig. 1 decay ordering.
class PropagationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropagationSweep, ThroatToEarDecayHoldsPerPerson) {
  Rng rng(GetParam());
  PopulationGenerator pop(GetParam() * 31 + 7);
  SessionRecorder rec(pop.sample(), rng);
  double throat = 0.0;
  double mandible = 0.0;
  double ear = 0.0;
  SessionConfig cfg;
  for (int i = 0; i < 4; ++i) {
    cfg.location = AttachLocation::Throat;
    throat += voiced_std(rec.record(cfg), 2);
    cfg.location = AttachLocation::Mandible;
    mandible += voiced_std(rec.record(cfg), 2);
    cfg.location = AttachLocation::Ear;
    ear += voiced_std(rec.record(cfg), 2);
  }
  EXPECT_GT(throat, mandible);
  EXPECT_GT(mandible, ear * 0.95);  // mandible >= ear within sampling noise
}

INSTANTIATE_TEST_SUITE_P(People, PropagationSweep, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mandipass::vibration

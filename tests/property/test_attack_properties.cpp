// Attack-subsystem properties (DESIGN.md §16):
//   1. more observation helps the mimic — forged-probe distance does not
//      get worse as the observation budget N grows;
//   2. at the EER threshold, the zero-effort attacker's success rate IS
//      the FAR, and both sit at the calibrated EER — the attacker is
//      accounted with exactly the same arithmetic as auth::far_at;
//   3. the whole scenario matrix is thread-count invariant bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "attack/mimicry_attacker.h"
#include "attack/replay_attacker.h"
#include "attack/scenario.h"
#include "attack/scenario_matrix.h"
#include "attack/zero_effort_attacker.h"
#include "auth/gaussian_matrix.h"
#include "auth/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/extractor.h"
#include "core/preprocessor.h"
#include "core/signal_array.h"
#include "vibration/population.h"
#include "vibration/session.h"

namespace mandipass::attack {
namespace {

core::BiometricExtractor small_extractor() {
  core::ExtractorConfig cfg;
  cfg.embedding_dim = 32;
  cfg.channels = {4, 6, 8};
  return core::BiometricExtractor(cfg);
}

MatrixConfig small_config() {
  MatrixConfig cfg;
  cfg.victims = 3;
  cfg.enroll_sessions = 2;
  cfg.observed_sessions = 4;
  cfg.genuine_probes = 3;
  cfg.attack_probes = 4;
  return cfg;
}

/// Mean forged-probe distance to one fixed victim's sealed template for a
/// mimic granted `observations` tape entries. Everything is seeded, so
/// this is a pure function of N.
double mimicry_mean_distance(std::size_t observations) {
  auto extractor = small_extractor();
  const core::Preprocessor prep;

  vibration::PopulationGenerator pop(2024);
  vibration::PersonProfile victim = pop.sample();
  Rng rng(5150);
  vibration::SessionRecorder recorder(victim, rng);
  const vibration::SessionConfig session{};

  std::vector<double> mean(32, 0.0);
  std::size_t enrolled = 0;
  for (const auto& rec : recorder.record_many(session, 4)) {
    const auto processed = prep.try_process(rec);
    if (!processed.ok()) continue;
    const auto print = extractor.extract(core::build_gradient_array(processed.value()));
    for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += static_cast<double>(print[i]);
    ++enrolled;
  }
  EXPECT_GT(enrolled, 0u);
  std::vector<float> template_print(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    template_print[i] = static_cast<float>(mean[i] / static_cast<double>(enrolled));
  }
  const auth::GaussianMatrix key(909, template_print.size());
  const std::vector<float> sealed = key.transform(template_print);

  VictimIntel intel;
  intel.session = session;
  intel.observed = recorder.record_many(session, 8);
  intel.heard_f0_hz = victim.f0_hz;
  intel.heard_loudness = 0.5 * (victim.force_pos_n + victim.force_neg_n);

  MimicryAttacker attacker(7, {.observations = observations});
  double total = 0.0;
  std::size_t scored = 0;
  for (const Forgery& f : attacker.forge(intel, 16)) {
    const ProbeOutcome outcome = score_forgery(f, prep, extractor, sealed, key);
    if (outcome.capture_rejected) continue;  // count only what reached matching
    total += outcome.distance;
    ++scored;
  }
  EXPECT_GT(scored, 8u);  // a mimic's own sessions are valid captures
  return total / static_cast<double>(scored);
}

TEST(AttackProperties, MimicryObservationBudgetMonotone) {
  // VSR(N) non-decreasing <=> forged distance non-increasing in N. The
  // mean over 16 seeded forgeries must not get worse as the tape grows,
  // up to a small per-step slack for fit jitter; the endpoints must
  // improve outright.
  const std::vector<std::size_t> budgets{1, 2, 4, 8};
  std::vector<double> means;
  for (std::size_t n : budgets) means.push_back(mimicry_mean_distance(n));
  for (std::size_t i = 1; i < means.size(); ++i) {
    EXPECT_LE(means[i], means[i - 1] + 0.05)
        << "N=" << budgets[i] << " worse than N=" << budgets[i - 1];
  }
  EXPECT_LE(means.back(), means.front() + 1e-12);
}

TEST(AttackProperties, ZeroEffortVsrIsFarAndSitsAtEer) {
  auto extractor = small_extractor();
  ScenarioMatrix matrix(small_config(), extractor);
  ZeroEffortAttacker zero(11);
  std::vector<Attacker*> attackers{&zero};
  const auto scenarios = default_scenarios();
  const MatrixResult result = matrix.run(attackers, scenarios);

  const GenuineRow* row = result.genuine_row("clean");
  const CellResult* cell = result.cell("zero_effort", "clean");
  ASSERT_NE(row, nullptr);
  ASSERT_NE(cell, nullptr);

  // The cell's EER is exactly compute_eer over (genuine row, cell).
  const auth::EerResult eer = auth::compute_eer(row->distances, cell->distances);
  EXPECT_EQ(cell->eer, eer.eer);

  // At the EER threshold, the attacker's acceptance rate is far_at by
  // construction, and both equal the EER up to the resolution of the
  // finite distance sets (1/n per set).
  const double far = auth::far_at(cell->distances, eer.threshold);
  std::size_t accepted = 0;
  for (double d : cell->distances) {
    if (d <= eer.threshold) ++accepted;
  }
  EXPECT_EQ(far, static_cast<double>(accepted) / static_cast<double>(cell->distances.size()));
  const double resolution = 1.0 / static_cast<double>(cell->distances.size()) +
                            1.0 / static_cast<double>(row->distances.size());
  EXPECT_NEAR(far, eer.eer, resolution);
  EXPECT_NEAR(auth::frr_at(row->distances, eer.threshold), eer.eer, resolution);
}

TEST(AttackProperties, MatrixIsThreadCountInvariant) {
  const auto scenarios = default_scenarios();
  auto run_with_threads = [&](std::size_t threads) {
    common::ThreadPool::set_global_threads(threads);
    auto extractor = small_extractor();
    ScenarioMatrix matrix(small_config(), extractor);
    ZeroEffortAttacker zero(11);
    MimicryAttacker mimicry(12, {.observations = 2});
    ReplayAttacker replay;
    std::vector<Attacker*> attackers{&zero, &mimicry, &replay};
    return matrix.run(attackers, scenarios);
  };
  const MatrixResult one = run_with_threads(1);
  const MatrixResult four = run_with_threads(4);
  common::ThreadPool::set_global_threads(0);  // restore default sizing

  EXPECT_EQ(one.threshold, four.threshold);
  EXPECT_EQ(one.calibration_eer, four.calibration_eer);
  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    EXPECT_EQ(one.cells[i].distances, four.cells[i].distances);  // bit-exact
    EXPECT_EQ(one.cells[i].accepted, four.cells[i].accepted);
  }
  ASSERT_EQ(one.genuine.size(), four.genuine.size());
  for (std::size_t i = 0; i < one.genuine.size(); ++i) {
    EXPECT_EQ(one.genuine[i].distances, four.genuine[i].distances);
  }
}

}  // namespace
}  // namespace mandipass::attack

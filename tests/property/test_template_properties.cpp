// Property sweep over the cancelable-template scheme (Section VI): for
// every template dimension in use, the Gaussian transform must (a) keep
// genuine matches matching under one matrix, (b) decorrelate the same
// vector under different matrices (unlinkability / replay defence), and
// (c) keep different users apart.
#include <gtest/gtest.h>

#include "auth/cosine.h"
#include "auth/gaussian_matrix.h"
#include "common/rng.h"

namespace mandipass::auth {
namespace {

class TemplateSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::vector<float> sigmoid_like(std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<float> v(GetParam());
    for (auto& x : v) {
      x = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    return v;
  }

  std::vector<float> perturbed(const std::vector<float>& x, double sigma,
                               std::uint64_t seed) const {
    Rng rng(seed);
    auto y = x;
    for (auto& v : y) {
      v += static_cast<float>(rng.normal(0.0, sigma));
    }
    return y;
  }
};

TEST_P(TemplateSweep, GenuineMatchSurvivesTransform) {
  const GaussianMatrix g(11, GetParam());
  for (int t = 0; t < 10; ++t) {
    const auto x = sigmoid_like(100 + t);
    const auto y = perturbed(x, 0.02, 200 + t);
    const double before = cosine_distance(x, y);
    const double after = cosine_distance(g.transform(x), g.transform(y));
    EXPECT_LT(after, before + 0.15);
  }
}

TEST_P(TemplateSweep, RekeyDecorrelates) {
  double mean = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const GaussianMatrix g1(1000 + t, GetParam());
    const GaussianMatrix g2(5000 + t, GetParam());
    const auto x = sigmoid_like(300 + t);
    mean += cosine_distance(g1.transform(x), g2.transform(x));
  }
  mean /= trials;
  EXPECT_GT(mean, 0.6);
}

TEST_P(TemplateSweep, ImpostorsStayApart) {
  const GaussianMatrix g(13, GetParam());
  double raw_mean = 0.0;
  double transformed_mean = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto x = sigmoid_like(400 + 2 * t);
    const auto y = sigmoid_like(401 + 2 * t);
    raw_mean += cosine_distance(x, y);
    transformed_mean += cosine_distance(g.transform(x), g.transform(y));
  }
  raw_mean /= trials;
  transformed_mean /= trials;
  // The projection must not collapse impostor separation.
  EXPECT_GT(transformed_mean, raw_mean * 0.5);
}

TEST_P(TemplateSweep, TransformDeterministicPerSeed) {
  const GaussianMatrix a(21, GetParam());
  const GaussianMatrix b(21, GetParam());
  const auto x = sigmoid_like(500);
  EXPECT_EQ(a.transform(x), b.transform(x));
}

INSTANTIATE_TEST_SUITE_P(Dims, TemplateSweep,
                         ::testing::Values(32, 64, 128, 256, 512),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "dim" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mandipass::auth

// Property sweep: the 4th-order Butterworth high-pass design must hold
// its defining properties (-3 dB at fc, monotone stopband, flat passband)
// over the whole range of cutoff / sample-rate combinations the system
// may be configured with.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/filter.h"

namespace mandipass::dsp {
namespace {

struct FilterCase {
  double fc;
  double fs;
};

class ButterworthSweep : public ::testing::TestWithParam<FilterCase> {};

TEST_P(ButterworthSweep, CutoffIsMinus3dB) {
  const auto [fc, fs] = GetParam();
  auto hp = SosFilter::butterworth_highpass4(fc, fs);
  EXPECT_NEAR(hp.magnitude_at(fc, fs), 1.0 / std::sqrt(2.0), 0.03);
}

TEST_P(ButterworthSweep, StopbandMonotone) {
  const auto [fc, fs] = GetParam();
  auto hp = SosFilter::butterworth_highpass4(fc, fs);
  double prev = -1.0;
  for (int i = 1; i <= 20; ++i) {
    const double f = fc * static_cast<double>(i) / 20.0;
    const double mag = hp.magnitude_at(f, fs);
    EXPECT_GE(mag, prev - 1e-9);
    prev = mag;
  }
}

TEST_P(ButterworthSweep, PassbandFlat) {
  const auto [fc, fs] = GetParam();
  auto hp = SosFilter::butterworth_highpass4(fc, fs);
  // One octave above cutoff a 4th-order Butterworth is within ~0.3 dB.
  const double f = std::min(2.0 * fc, 0.45 * fs);
  EXPECT_GT(hp.magnitude_at(f, fs), 0.9);
}

TEST_P(ButterworthSweep, DeepAttenuationADecadeDown) {
  const auto [fc, fs] = GetParam();
  auto hp = SosFilter::butterworth_highpass4(fc, fs);
  EXPECT_LT(hp.magnitude_at(fc / 10.0, fs), 2e-4);  // ~-80 dB ideal
}

INSTANTIATE_TEST_SUITE_P(
    CutoffGrid, ButterworthSweep,
    ::testing::Values(FilterCase{20.0, 350.0},   // the paper's filter
                      FilterCase{20.0, 160.0},   // slowest plausible IMU rate
                      FilterCase{20.0, 500.0},   // fastest per the paper
                      FilterCase{10.0, 350.0},   // looser cutoff
                      FilterCase{40.0, 350.0},   // tighter cutoff
                      FilterCase{50.0, 1000.0},  // simulator-side rates
                      FilterCase{460.0, 8000.0}),
    [](const ::testing::TestParamInfo<FilterCase>& info) {
      return "fc" + std::to_string(static_cast<int>(info.param.fc)) + "_fs" +
             std::to_string(static_cast<int>(info.param.fs));
    });

}  // namespace
}  // namespace mandipass::dsp

// Property sweep over the authentication metrics: for synthetic genuine /
// impostor distance distributions with known separation, the EER must
// behave like a proper equal-error rate — monotone in the separation,
// bounded, and consistent with the FAR/FRR definitions at every
// threshold.
#include <gtest/gtest.h>

#include <cmath>

#include "auth/metrics.h"
#include "common/rng.h"

namespace mandipass::auth {
namespace {

struct SeparationCase {
  double genuine_mean;
  double impostor_mean;
  double sigma;
};

class MetricsSweep : public ::testing::TestWithParam<SeparationCase> {
 protected:
  void SetUp() override {
    Rng rng(4242);
    const auto p = GetParam();
    for (int i = 0; i < 4000; ++i) {
      genuine_.push_back(rng.normal(p.genuine_mean, p.sigma));
      impostor_.push_back(rng.normal(p.impostor_mean, p.sigma));
    }
  }

  std::vector<double> genuine_;
  std::vector<double> impostor_;
};

TEST_P(MetricsSweep, EerMatchesGaussianTheory) {
  const auto p = GetParam();
  const auto r = compute_eer(genuine_, impostor_);
  // Equal sigmas: EER = Phi(-(mu_i - mu_g) / (2 sigma)).
  const double z = (p.impostor_mean - p.genuine_mean) / (2.0 * p.sigma);
  const double theory = 0.5 * std::erfc(z / std::sqrt(2.0));
  EXPECT_NEAR(r.eer, theory, std::max(0.01, theory * 0.3));
}

TEST_P(MetricsSweep, EerThresholdNearMidpoint) {
  const auto p = GetParam();
  const auto r = compute_eer(genuine_, impostor_);
  const double mid = 0.5 * (p.genuine_mean + p.impostor_mean);
  EXPECT_NEAR(r.threshold, mid, p.sigma);
}

TEST_P(MetricsSweep, FarFrrCrossNearEer) {
  const auto r = compute_eer(genuine_, impostor_);
  EXPECT_NEAR(far_at(impostor_, r.threshold), r.eer, 0.02);
  EXPECT_NEAR(frr_at(genuine_, r.threshold), r.eer, 0.02);
}

TEST_P(MetricsSweep, RatesAreMonotoneInThreshold) {
  double prev_far = -1.0;
  double prev_frr = 2.0;
  for (double t = -1.0; t <= 2.0; t += 0.05) {
    const double far = far_at(impostor_, t);
    const double frr = frr_at(genuine_, t);
    EXPECT_GE(far, prev_far);
    EXPECT_LE(frr, prev_frr);
    prev_far = far;
    prev_frr = frr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Separations, MetricsSweep,
    ::testing::Values(SeparationCase{0.2, 0.8, 0.10},   // easy
                      SeparationCase{0.3, 0.7, 0.10},   // moderate
                      SeparationCase{0.35, 0.65, 0.10}, // harder
                      SeparationCase{0.4, 0.6, 0.10},   // heavy overlap
                      SeparationCase{0.3, 0.7, 0.05},   // tight clusters
                      SeparationCase{0.3, 0.7, 0.20}),  // diffuse clusters
    [](const ::testing::TestParamInfo<SeparationCase>& info) {
      return "g" + std::to_string(static_cast<int>(info.param.genuine_mean * 100)) + "_i" +
             std::to_string(static_cast<int>(info.param.impostor_mean * 100)) + "_s" +
             std::to_string(static_cast<int>(info.param.sigma * 100));
    });

// Separate (non-parameterised) ordering property: larger separation can
// never produce a larger EER.
TEST(MetricsOrdering, EerMonotoneInSeparation) {
  Rng rng(7);
  double prev_eer = 1.0;
  for (const double gap : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    std::vector<double> genuine;
    std::vector<double> impostor;
    for (int i = 0; i < 4000; ++i) {
      genuine.push_back(rng.normal(0.5 - gap / 2.0, 0.1));
      impostor.push_back(rng.normal(0.5 + gap / 2.0, 0.1));
    }
    const double eer = compute_eer(genuine, impostor).eer;
    EXPECT_LE(eer, prev_eer + 0.01);
    prev_eer = eer;
  }
}

}  // namespace
}  // namespace mandipass::auth

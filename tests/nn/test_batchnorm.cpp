#include "nn/batchnorm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "grad_check.h"

namespace mandipass::nn {
namespace {

using testing::check_gradients;
using testing::random_tensor;

TEST(BatchNorm, NormalisesBatchStatistics) {
  BatchNorm2d bn(2);
  Tensor in = random_tensor({4, 2, 3, 5}, 1);
  // Shift channel 1 far away to make the effect visible.
  for (std::size_t b = 0; b < 4; ++b) {
    for (std::size_t h = 0; h < 3; ++h) {
      for (std::size_t w = 0; w < 5; ++w) {
        in.at4(b, 1, h, w) += 100.0f;
      }
    }
  }
  const Tensor out = bn.forward(in, /*train=*/true);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sum2 = 0.0;
    for (std::size_t b = 0; b < 4; ++b) {
      for (std::size_t h = 0; h < 3; ++h) {
        for (std::size_t w = 0; w < 5; ++w) {
          sum += out.at4(b, c, h, w);
          sum2 += static_cast<double>(out.at4(b, c, h, w)) * out.at4(b, c, h, w);
        }
      }
    }
    const double n = 4.0 * 3.0 * 5.0;
    EXPECT_NEAR(sum / n, 0.0, 1e-5);
    EXPECT_NEAR(sum2 / n, 1.0, 1e-3);
  }
}

TEST(BatchNorm, GammaBetaScaleShift) {
  BatchNorm2d bn(1);
  bn.params()[0]->value.fill(3.0f);  // gamma
  bn.params()[1]->value.fill(-1.0f);  // beta
  const Tensor in = random_tensor({8, 1, 2, 2}, 2);
  const Tensor out = bn.forward(in, true);
  double sum = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    sum += out[i];
  }
  EXPECT_NEAR(sum / static_cast<double>(out.size()), -1.0, 1e-4);
}

TEST(BatchNorm, RunningStatsConvergeToDataStats) {
  BatchNorm2d bn(1, /*momentum=*/0.3);
  Rng rng(3);
  for (int step = 0; step < 200; ++step) {
    Tensor in({16, 1, 2, 2});
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<float>(rng.normal(5.0, 2.0));
    }
    bn.forward(in, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0, 0.3);
  EXPECT_NEAR(bn.running_var()[0], 4.0, 0.8);
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  BatchNorm2d bn(1, 0.5);
  Tensor in({4, 1, 1, 2});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(i);
  }
  bn.forward(in, true);
  bn.forward(in, true);
  // In eval mode, a constant input maps through the affine running stats —
  // all outputs identical, no batch statistics involved.
  Tensor constant({2, 1, 1, 2});
  constant.fill(1.0f);
  const Tensor out = bn.forward(constant, false);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], out[0]);
  }
}

TEST(BatchNorm, EvalModeIsDeterministic) {
  BatchNorm2d bn(2);
  bn.forward(random_tensor({8, 2, 2, 2}, 4), true);
  const Tensor probe = random_tensor({3, 2, 2, 2}, 5);
  const Tensor a = bn.forward(probe, false);
  const Tensor b = bn.forward(probe, false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
  }
}

TEST(BatchNorm, GradientCheck) {
  BatchNorm2d bn(3);
  // Non-trivial gamma/beta so their gradients are exercised.
  bn.params()[0]->value[1] = 1.7f;
  bn.params()[1]->value[2] = -0.4f;
  check_gradients(bn, random_tensor({4, 3, 2, 3}, 6), /*train=*/true, 1e-3, 5e-2);
}

TEST(BatchNorm, WrongChannelCountThrows) {
  BatchNorm2d bn(4);
  EXPECT_THROW(bn.forward(random_tensor({2, 3, 2, 2}, 7), true), ShapeError);
}

TEST(BatchNorm, InvalidConfigThrows) {
  EXPECT_THROW(BatchNorm2d(0), PreconditionError);
  EXPECT_THROW(BatchNorm2d(4, 0.0), PreconditionError);
}

}  // namespace
}  // namespace mandipass::nn

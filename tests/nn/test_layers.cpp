#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>

#include "grad_check.h"

namespace mandipass::nn {
namespace {

using testing::check_gradients;
using testing::random_tensor;

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor in({1, 4});
  in[0] = -1.0f;
  in[1] = 0.0f;
  in[2] = 2.0f;
  in[3] = -0.5f;
  const Tensor out = relu.forward(in, true);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(ReLU, GradientMasksNegatives) {
  ReLU relu;
  Tensor in({1, 3});
  in[0] = -1.0f;
  in[1] = 1.0f;
  in[2] = 3.0f;
  relu.forward(in, true);
  Tensor g({1, 3});
  g.fill(1.0f);
  const Tensor gi = relu.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 1.0f);
  EXPECT_FLOAT_EQ(gi[2], 1.0f);
}

TEST(ReLU, GradientCheck) {
  ReLU relu;
  // Keep inputs away from the kink at 0 for clean finite differences.
  Tensor in = random_tensor({2, 8}, 1);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (std::abs(in[i]) < 0.1f) {
      in[i] = 0.5f;
    }
  }
  check_gradients(relu, in);
}

TEST(Sigmoid, KnownValues) {
  Sigmoid sig;
  Tensor in({1, 3});
  in[0] = 0.0f;
  in[1] = 100.0f;
  in[2] = -100.0f;
  const Tensor out = sig.forward(in, true);
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6);
  EXPECT_NEAR(out[2], 0.0f, 1e-6);
}

TEST(Sigmoid, OutputInUnitInterval) {
  Sigmoid sig;
  const Tensor out = sig.forward(random_tensor({4, 16}, 2), true);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i], 0.0f);
    EXPECT_LE(out[i], 1.0f);
  }
}

TEST(Sigmoid, GradientCheck) {
  Sigmoid sig;
  check_gradients(sig, random_tensor({2, 10}, 3));
}

TEST(Flatten, CollapsesTrailingDims) {
  Flatten flat;
  const Tensor out = flat.forward(random_tensor({2, 3, 4, 5}, 4), true);
  EXPECT_EQ(out.rank(), 2u);
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), 60u);
}

TEST(Flatten, Rank2PassThrough) {
  Flatten flat;
  const Tensor in = random_tensor({3, 7}, 5);
  const Tensor out = flat.forward(in, true);
  EXPECT_EQ(out.shape(), in.shape());
}

TEST(Flatten, BackwardRestoresShape) {
  Flatten flat;
  const Tensor in = random_tensor({2, 3, 2, 2}, 6);
  const Tensor out = flat.forward(in, true);
  const Tensor back = flat.backward(out);
  EXPECT_EQ(back.shape(), in.shape());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(back[i], in[i]);
  }
}

TEST(Layers, BackwardBeforeForwardThrows) {
  ReLU relu;
  Tensor g({1, 2});
  EXPECT_THROW(relu.backward(g), PreconditionError);
  Sigmoid sig;
  EXPECT_THROW(sig.backward(g), PreconditionError);
  Flatten flat;
  EXPECT_THROW(flat.backward(g), PreconditionError);
}

TEST(Layers, Names) {
  EXPECT_EQ(ReLU().name(), "ReLU");
  EXPECT_EQ(Sigmoid().name(), "Sigmoid");
  EXPECT_EQ(Flatten().name(), "Flatten");
}

}  // namespace
}  // namespace mandipass::nn

#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mandipass::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(3), 5u);
  EXPECT_THROW(t.dim(4), PreconditionError);
}

TEST(Tensor, At2RowMajor) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
}

TEST(Tensor, At4RowMajor) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[1 * 60 + 2 * 20 + 3 * 5 + 4], 9.0f);
}

TEST(Tensor, FillSetsAll) {
  Tensor t({3, 3});
  t.fill(2.5f);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 2.5f);
  }
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t.at2(1, 3) = 4.0f;
  t.reshape({2, 2, 3, 1});
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t[9], 4.0f);
}

TEST(Tensor, ReshapeSizeMismatchThrows) {
  Tensor t({2, 6});
  EXPECT_THROW(t.reshape({5}), PreconditionError);
}

TEST(Tensor, InvalidShapesThrow) {
  EXPECT_THROW(Tensor({0, 3}), PreconditionError);
  EXPECT_THROW(Tensor({1, 2, 3, 4, 5}), PreconditionError);
}

TEST(Tensor, HeInitStatistics) {
  Rng rng(5);
  Tensor t({1000, 100});
  t.init_he(rng, 50);
  double sum = 0.0;
  double sum2 = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sum2 += static_cast<double>(t[i]) * t[i];
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 2.0 / 50.0, 0.005);
}

TEST(Tensor, XavierInitBounded) {
  Rng rng(6);
  Tensor t({100, 100});
  t.init_xavier(rng, 64, 64);
  const double limit = std::sqrt(6.0 / 128.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(t[i]), limit);
  }
}

TEST(Tensor, CheckSameShape) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  Tensor c({3, 2});
  EXPECT_NO_THROW(Tensor::check_same_shape(a, b, "test"));
  EXPECT_THROW(Tensor::check_same_shape(a, c, "test"), ShapeError);
}

TEST(ShapeSize, Computes) {
  EXPECT_EQ(shape_size({2, 3, 4}), 24u);
  EXPECT_EQ(shape_size({}), 0u);
}

}  // namespace
}  // namespace mandipass::nn

#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "grad_check.h"

namespace mandipass::nn {
namespace {

using testing::random_tensor;

TEST(SoftmaxCE, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 4});
  const double l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0), 1e-6);
}

TEST(SoftmaxCE, ConfidentCorrectIsNearZero) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at2(0, 1) = 50.0f;
  EXPECT_NEAR(loss.forward(logits, {1}), 0.0, 1e-6);
}

TEST(SoftmaxCE, ConfidentWrongIsLarge) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at2(0, 1) = 50.0f;
  EXPECT_GT(loss.forward(logits, {0}), 10.0);
}

TEST(SoftmaxCE, ProbabilitiesSumToOne) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = random_tensor({3, 5}, 1);
  std::vector<std::uint32_t> labels{0, 2, 4};
  loss.forward(logits, labels);
  for (std::size_t b = 0; b < 3; ++b) {
    double sum = 0.0;
    for (std::size_t k = 0; k < 5; ++k) {
      sum += loss.probabilities().at2(b, k);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxCE, NumericallyStableForHugeLogits) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 2});
  logits.at2(0, 0) = 10000.0f;
  logits.at2(0, 1) = 9999.0f;
  const double l = loss.forward(logits, {0});
  EXPECT_TRUE(std::isfinite(l));
  EXPECT_NEAR(l, std::log(1.0 + std::exp(-1.0)), 1e-4);
}

TEST(SoftmaxCE, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Tensor logits = random_tensor({2, 4}, 2);
  std::vector<std::uint32_t> labels{1, 3};
  loss.forward(logits, labels);
  const Tensor grad = loss.backward();
  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(eps);
    const double plus = loss.forward(logits, labels);
    logits[i] = saved - static_cast<float>(eps);
    const double minus = loss.forward(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR(grad[i], (plus - minus) / (2.0 * eps), 1e-3);
  }
}

TEST(SoftmaxCE, GradientSumsToZeroPerRow) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = random_tensor({3, 6}, 3);
  loss.forward(logits, {0, 1, 5});
  const Tensor grad = loss.backward();
  for (std::size_t b = 0; b < 3; ++b) {
    double sum = 0.0;
    for (std::size_t k = 0; k < 6; ++k) {
      sum += grad.at2(b, k);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCE, AccuracyCounting) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  logits.at2(0, 2) = 5.0f;  // predicts 2
  logits.at2(1, 0) = 5.0f;  // predicts 0
  loss.forward(logits, {2, 1});
  EXPECT_DOUBLE_EQ(loss.accuracy(), 0.5);
}

TEST(SoftmaxCE, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), PreconditionError);
}

TEST(SoftmaxCE, LabelCountMismatchThrows) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  EXPECT_THROW(loss.forward(logits, {0}), PreconditionError);
}

}  // namespace
}  // namespace mandipass::nn

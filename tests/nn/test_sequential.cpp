#include "nn/sequential.h"

#include <gtest/gtest.h>

#include <memory>

#include "grad_check.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/loss.h"

namespace mandipass::nn {
namespace {

using testing::check_gradients;
using testing::random_tensor;

std::unique_ptr<Sequential> small_mlp(Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Linear>(4, 8, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(8, 3, rng));
  return net;
}

TEST(Sequential, ChainsForward) {
  Rng rng(1);
  auto net = small_mlp(rng);
  const Tensor out = net->forward(random_tensor({2, 4}, 2), true);
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), 3u);
}

TEST(Sequential, CollectsAllParams) {
  Rng rng(3);
  auto net = small_mlp(rng);
  EXPECT_EQ(net->params().size(), 4u);  // two Linear layers x (W, b)
}

TEST(Sequential, ParameterCount) {
  Rng rng(4);
  auto net = small_mlp(rng);
  EXPECT_EQ(net->parameter_count(), 4u * 8u + 8u + 8u * 3u + 3u);
}

TEST(Sequential, GradientCheckThroughStack) {
  Rng rng(5);
  auto net = small_mlp(rng);
  Tensor in = random_tensor({3, 4}, 6);
  check_gradients(*net, in);
}

TEST(Sequential, LearnsXor) {
  // End-to-end sanity: a small MLP must learn XOR.
  Rng rng(7);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 16, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Linear>(16, 2, rng));
  Adam opt(net.params(), {.lr = 0.05});
  SoftmaxCrossEntropy loss;
  Tensor x({4, 2});
  x.at2(1, 1) = 1.0f;
  x.at2(2, 0) = 1.0f;
  x.at2(3, 0) = 1.0f;
  x.at2(3, 1) = 1.0f;
  const std::vector<std::uint32_t> y{0, 1, 1, 0};
  for (int i = 0; i < 2000; ++i) {
    opt.zero_grad();
    loss.forward(net.forward(x, true), y);
    net.backward(loss.backward());
    opt.step();
  }
  loss.forward(net.forward(x, false), y);
  EXPECT_DOUBLE_EQ(loss.accuracy(), 1.0);
}

TEST(Sequential, LayerAccess) {
  Rng rng(8);
  auto net = small_mlp(rng);
  EXPECT_EQ(net->layer_count(), 3u);
  EXPECT_EQ(net->layer(1).name(), "ReLU");
  EXPECT_THROW(net->layer(3), PreconditionError);
}

TEST(Sequential, NullLayerRejected) {
  Sequential net;
  EXPECT_THROW(net.add(nullptr), PreconditionError);
}

}  // namespace
}  // namespace mandipass::nn

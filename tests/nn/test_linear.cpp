#include "nn/linear.h"

#include <gtest/gtest.h>

#include "grad_check.h"

namespace mandipass::nn {
namespace {

using testing::check_gradients;
using testing::random_tensor;

TEST(Linear, OutputShape) {
  Rng rng(1);
  Linear fc(8, 3, rng);
  const Tensor out = fc.forward(random_tensor({5, 8}, 2), true);
  EXPECT_EQ(out.dim(0), 5u);
  EXPECT_EQ(out.dim(1), 3u);
}

TEST(Linear, ComputesAffineMap) {
  Rng rng(2);
  Linear fc(2, 2, rng);
  // W = [[1, 2], [3, 4]], b = [10, 20]
  Param* w = fc.params()[0];
  Param* b = fc.params()[1];
  w->value.at2(0, 0) = 1.0f;
  w->value.at2(0, 1) = 2.0f;
  w->value.at2(1, 0) = 3.0f;
  w->value.at2(1, 1) = 4.0f;
  b->value[0] = 10.0f;
  b->value[1] = 20.0f;
  Tensor in({1, 2});
  in.at2(0, 0) = 1.0f;
  in.at2(0, 1) = -1.0f;
  const Tensor out = fc.forward(in, true);
  EXPECT_FLOAT_EQ(out.at2(0, 0), 10.0f - 1.0f);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 20.0f - 1.0f);
}

TEST(Linear, GradientCheck) {
  Rng rng(3);
  Linear fc(6, 4, rng);
  check_gradients(fc, random_tensor({3, 6}, 4));
}

TEST(Linear, BatchIndependence) {
  Rng rng(5);
  Linear fc(4, 2, rng);
  const Tensor a = random_tensor({1, 4}, 6);
  Tensor ab({2, 4});
  for (std::size_t j = 0; j < 4; ++j) {
    ab.at2(0, j) = a.at2(0, j);
    ab.at2(1, j) = a.at2(0, j) * 2.0f;
  }
  const Tensor single = fc.forward(a, true);
  const Tensor batch = fc.forward(ab, true);
  EXPECT_FLOAT_EQ(batch.at2(0, 0), single.at2(0, 0));
  EXPECT_FLOAT_EQ(batch.at2(0, 1), single.at2(0, 1));
}

TEST(Linear, WrongShapeThrows) {
  Rng rng(7);
  Linear fc(4, 2, rng);
  EXPECT_THROW(fc.forward(random_tensor({2, 5}, 8), true), ShapeError);
  EXPECT_THROW(fc.forward(random_tensor({2, 4, 1, 1}, 9), true), ShapeError);
}

TEST(Linear, AccessorsAndInvalidConfig) {
  Rng rng(10);
  Linear fc(16, 32, rng);
  EXPECT_EQ(fc.in_features(), 16u);
  EXPECT_EQ(fc.out_features(), 32u);
  EXPECT_THROW(Linear(0, 4, rng), PreconditionError);
}

}  // namespace
}  // namespace mandipass::nn

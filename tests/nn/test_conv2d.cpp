#include "nn/conv2d.h"

#include <gtest/gtest.h>

#include "grad_check.h"

namespace mandipass::nn {
namespace {

using testing::check_gradients;
using testing::random_tensor;

TEST(Conv2d, OutExtent) {
  // The paper's branch geometry: W 30 -> 15 -> 8 -> 4 with k=3, s=2, p=1.
  EXPECT_EQ(Conv2d::out_extent(30, 3, 2, 1), 15u);
  EXPECT_EQ(Conv2d::out_extent(15, 3, 2, 1), 8u);
  EXPECT_EQ(Conv2d::out_extent(8, 3, 2, 1), 4u);
  // H stays 6 with s=1, p=1.
  EXPECT_EQ(Conv2d::out_extent(6, 3, 1, 1), 6u);
}

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 4;
  Conv2d conv(cfg, rng);
  const Tensor out = conv.forward(random_tensor({2, 1, 6, 30}, 7), true);
  ASSERT_EQ(out.rank(), 4u);
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), 4u);
  EXPECT_EQ(out.dim(2), 6u);
  EXPECT_EQ(out.dim(3), 15u);
}

TEST(Conv2d, IdentityKernelCopiesInput) {
  Rng rng(2);
  Conv2dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.stride_w = 1;
  Conv2d conv(cfg, rng);
  // Hand-set the 3x3 kernel to a centred delta.
  Param* w = conv.params()[0];
  Param* b = conv.params()[1];
  w->value.fill(0.0f);
  w->value.at4(0, 0, 1, 1) = 1.0f;
  b->value.fill(0.0f);
  const Tensor in = random_tensor({1, 1, 5, 7}, 3);
  const Tensor out = conv.forward(in, true);
  ASSERT_EQ(out.shape(), in.shape());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], in[i]);
  }
}

TEST(Conv2d, BiasAddsUniformly) {
  Rng rng(3);
  Conv2dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  Conv2d conv(cfg, rng);
  conv.params()[0]->value.fill(0.0f);
  conv.params()[1]->value[0] = 1.5f;
  conv.params()[1]->value[1] = -2.0f;
  Tensor in({1, 1, 4, 8});
  const Tensor out = conv.forward(in, true);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 2, 1), 1.5f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 2, 1), -2.0f);
}

TEST(Conv2d, PaddingZeroesOutside) {
  Rng rng(4);
  Conv2dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.stride_w = 1;
  Conv2d conv(cfg, rng);
  Param* w = conv.params()[0];
  w->value.fill(1.0f);  // sum of the 3x3 neighbourhood
  conv.params()[1]->value.fill(0.0f);
  Tensor in({1, 1, 3, 3});
  in.fill(1.0f);
  const Tensor out = conv.forward(in, true);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 9.0f);  // centre sees all 9
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);  // corner sees 4
}

TEST(Conv2d, GradientCheckStride1) {
  Rng rng(5);
  Conv2dConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 3;
  cfg.stride_w = 1;
  Conv2d conv(cfg, rng);
  check_gradients(conv, random_tensor({2, 2, 4, 6}, 11));
}

TEST(Conv2d, GradientCheckPaperGeometry) {
  Rng rng(6);
  Conv2dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 4;
  cfg.stride_h = 1;
  cfg.stride_w = 2;
  Conv2d conv(cfg, rng);
  check_gradients(conv, random_tensor({2, 1, 6, 30}, 13));
}

TEST(Conv2d, GradientCheckStride2Both) {
  Rng rng(7);
  Conv2dConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 2;
  cfg.stride_h = 2;
  cfg.stride_w = 2;
  Conv2d conv(cfg, rng);
  check_gradients(conv, random_tensor({3, 3, 5, 9}, 17));
}

TEST(Conv2d, WrongInputShapeThrows) {
  Rng rng(8);
  Conv2d conv({}, rng);
  EXPECT_THROW(conv.forward(random_tensor({2, 3}, 1), true), ShapeError);
  Conv2dConfig two;
  two.in_channels = 2;
  Conv2d conv2(two, rng);
  EXPECT_THROW(conv2.forward(random_tensor({1, 1, 4, 4}, 1), true), ShapeError);
}

TEST(Conv2d, DeterministicAcrossCalls) {
  Rng rng(9);
  Conv2d conv({}, rng);
  const Tensor in = random_tensor({1, 1, 6, 30}, 19);
  const Tensor a = conv.forward(in, true);
  const Tensor b = conv.forward(in, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
  }
}

TEST(Conv2d, VaryingInputSizesRebuildIndex) {
  // The im2col gather index is cached per plane size; alternating sizes
  // must stay correct.
  Rng rng(10);
  Conv2dConfig cfg;
  cfg.stride_w = 1;
  cfg.out_channels = 1;
  Conv2d conv(cfg, rng);
  const Tensor small = random_tensor({1, 1, 4, 6}, 21);
  const Tensor large = random_tensor({1, 1, 6, 10}, 23);
  const Tensor s1 = conv.forward(small, true);
  conv.forward(large, true);
  const Tensor s2 = conv.forward(small, true);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_FLOAT_EQ(s1[i], s2[i]);
  }
}

}  // namespace
}  // namespace mandipass::nn

// Quantisation primitive tests live with the nn module; the end-to-end
// QuantizedExtractor tests are in tests/core/test_quantized_extractor.cpp.
#include "nn/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::nn {
namespace {

TEST(Quantize, ShapeAndSize) {
  Tensor w({3, 7});
  const auto q = quantize_rows(w);
  EXPECT_EQ(q.rows, 3u);
  EXPECT_EQ(q.cols, 7u);
  EXPECT_EQ(q.values.size(), 21u);
  EXPECT_EQ(q.scales.size(), 3u);
  EXPECT_EQ(q.storage_bytes(), 21u + 3u * sizeof(float));
}

TEST(Quantize, ExtremesMapTo127) {
  Tensor w({1, 3});
  w.at2(0, 0) = -2.0f;
  w.at2(0, 1) = 1.0f;
  w.at2(0, 2) = 2.0f;
  const auto q = quantize_rows(w);
  EXPECT_EQ(q.values[0], -127);
  EXPECT_EQ(q.values[2], 127);
  EXPECT_NEAR(q.scales[0], 2.0f / 127.0f, 1e-9);
}

TEST(Quantize, PerRowScalesIndependent) {
  Tensor w({2, 2});
  w.at2(0, 0) = 0.01f;
  w.at2(0, 1) = -0.01f;
  w.at2(1, 0) = 100.0f;
  w.at2(1, 1) = -100.0f;
  const auto q = quantize_rows(w);
  // The small row keeps full resolution despite the huge row.
  EXPECT_NEAR(dequantize(q).at2(0, 0), 0.01f, 1e-4);
  EXPECT_NEAR(dequantize(q).at2(1, 0), 100.0f, 1.0f);
}

TEST(Quantize, NonMatrixThrows) {
  Tensor w({2, 2, 2, 2});
  EXPECT_THROW(quantize_rows(w), PreconditionError);
}

TEST(Quantize, MatvecZeroScaleRowShortCircuitsToBias) {
  // A zero weight row quantizes to scale 0; the matvec must hand the
  // bias through exactly, never multiply by the (meaningless) scale.
  Tensor w({2, 3});
  w.at2(1, 0) = 4.0f;
  const auto q = quantize_rows(w);
  ASSERT_EQ(q.scales[0], 0.0f);
  const float x[3] = {1e30f, -1e30f, 1e30f};
  const float bias[2] = {-2.5f, 0.75f};
  float y[2] = {0.0f, 0.0f};
  quantized_matvec(q, x, bias, y);
  EXPECT_EQ(y[0], -2.5f);  // exact, despite the huge activations
}

TEST(Quantize, ErrorMetricZeroForExactValues) {
  Tensor w({1, 2});
  w.at2(0, 0) = 127.0f;
  w.at2(0, 1) = -127.0f;
  const auto q = quantize_rows(w);
  EXPECT_NEAR(quantization_error(w, q), 0.0, 1e-5);
}

}  // namespace
}  // namespace mandipass::nn

// Shared numerical-gradient checker for layer backward passes.
//
// Verifies dL/dx and dL/dtheta against central finite differences for the
// scalar loss L = sum(output * direction) with a fixed random direction.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/layer.h"

namespace mandipass::nn::testing {

/// Loss = sum_i out[i] * dir[i]; returns (loss, dL/dout = dir).
inline double directed_loss(const Tensor& out, const Tensor& dir) {
  double loss = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    loss += static_cast<double>(out[i]) * dir[i];
  }
  return loss;
}

/// Checks the analytic input and parameter gradients of `layer` on `input`
/// against finite differences. `train` selects the forward mode (BatchNorm
/// needs train=true for its batch-statistics path).
inline void check_gradients(Layer& layer, Tensor input, bool train = true, double eps = 1e-3,
                            double tol = 2e-2) {
  Rng rng(12345);
  Tensor out = layer.forward(input, train);
  Tensor dir(out.shape());
  for (std::size_t i = 0; i < dir.size(); ++i) {
    dir[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (Param* p : layer.params()) {
    p->zero_grad();
  }
  const Tensor grad_in = layer.backward(dir);
  ASSERT_EQ(grad_in.shape(), input.shape());

  // Input gradient: probe a subset of coordinates.
  const std::size_t stride = std::max<std::size_t>(1, input.size() / 24);
  for (std::size_t i = 0; i < input.size(); i += stride) {
    const float saved = input[i];
    input[i] = saved + static_cast<float>(eps);
    const double plus = directed_loss(layer.forward(input, train), dir);
    input[i] = saved - static_cast<float>(eps);
    const double minus = directed_loss(layer.forward(input, train), dir);
    input[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "input grad mismatch at " << i;
  }

  // Parameter gradients.
  for (Param* p : layer.params()) {
    const std::size_t pstride = std::max<std::size_t>(1, p->value.size() / 16);
    for (std::size_t i = 0; i < p->value.size(); i += pstride) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(eps);
      const double plus = directed_loss(layer.forward(input, train), dir);
      p->value[i] = saved - static_cast<float>(eps);
      const double minus = directed_loss(layer.forward(input, train), dir);
      p->value[i] = saved;
      const double numeric = (plus - minus) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol * std::max(1.0, std::abs(numeric)))
          << "param grad mismatch at " << i;
    }
  }
  // Restore the backward cache for any further use.
  layer.forward(input, train);
}

/// Fills a tensor with uniform values in [-1, 1].
inline Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

}  // namespace mandipass::nn::testing

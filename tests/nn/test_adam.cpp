#include "nn/adam.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mandipass::nn {
namespace {

TEST(Adam, MinimisesQuadratic) {
  // f(x) = (x - 3)^2, df/dx = 2(x - 3).
  Param x({1});
  x.value[0] = 0.0f;
  Adam opt({&x}, {.lr = 0.1});
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    x.grad[0] = 2.0f * (x.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(x.value[0], 3.0f, 1e-2);
}

TEST(Adam, FirstStepIsLrSized) {
  // Adam's bias correction makes the very first step ~= lr * sign(grad).
  Param x({1});
  x.value[0] = 1.0f;
  Adam opt({&x}, {.lr = 0.01});
  opt.zero_grad();
  x.grad[0] = 123.0f;
  opt.step();
  EXPECT_NEAR(x.value[0], 1.0f - 0.01f, 1e-4);
}

TEST(Adam, ZeroGradClearsAll) {
  Param a({2});
  Param b({3});
  a.grad.fill(5.0f);
  b.grad.fill(-2.0f);
  Adam opt({&a, &b}, {});
  opt.zero_grad();
  for (std::size_t i = 0; i < a.grad.size(); ++i) {
    EXPECT_EQ(a.grad[i], 0.0f);
  }
  for (std::size_t i = 0; i < b.grad.size(); ++i) {
    EXPECT_EQ(b.grad[i], 0.0f);
  }
}

TEST(Adam, NoGradNoMove) {
  Param x({4});
  x.value.fill(2.0f);
  Adam opt({&x}, {});
  opt.zero_grad();
  opt.step();
  for (std::size_t i = 0; i < x.value.size(); ++i) {
    EXPECT_FLOAT_EQ(x.value[i], 2.0f);
  }
}

TEST(Adam, WeightDecayShrinksParameters) {
  Param x({1});
  x.value[0] = 10.0f;
  Adam opt({&x}, {.lr = 0.1, .weight_decay = 0.1});
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();  // no loss gradient, decay only
    opt.step();
  }
  EXPECT_LT(std::abs(x.value[0]), 10.0f * 0.5f);
}

TEST(Adam, StepCount) {
  Param x({1});
  Adam opt({&x}, {});
  EXPECT_EQ(opt.step_count(), 0u);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.step_count(), 2u);
}

TEST(Adam, LrSetter) {
  Param x({1});
  Adam opt({&x}, {.lr = 0.5});
  EXPECT_DOUBLE_EQ(opt.lr(), 0.5);
  opt.set_lr(0.25);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.25);
}

TEST(Adam, InvalidConfigThrows) {
  Param x({1});
  EXPECT_THROW(Adam({&x}, {.lr = 0.0}), PreconditionError);
  EXPECT_THROW(Adam({&x}, {.lr = 0.1, .beta1 = 1.0}), PreconditionError);
  EXPECT_THROW(Adam({nullptr}, {}), PreconditionError);
}

TEST(Adam, HandlesRosenbrockValley) {
  // A harder 2-D test: Rosenbrock f = (1-a)^2 + 100(b - a^2)^2.
  Param p({2});
  p.value[0] = -1.0f;
  p.value[1] = 1.0f;
  Adam opt({&p}, {.lr = 0.02});
  for (int i = 0; i < 8000; ++i) {
    opt.zero_grad();
    const double a = p.value[0];
    const double b = p.value[1];
    p.grad[0] = static_cast<float>(-2.0 * (1.0 - a) - 400.0 * a * (b - a * a));
    p.grad[1] = static_cast<float>(200.0 * (b - a * a));
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 1.0f, 0.1f);
  EXPECT_NEAR(p.value[1], 1.0f, 0.2f);
}

}  // namespace
}  // namespace mandipass::nn

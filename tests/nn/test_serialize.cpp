#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "grad_check.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/sequential.h"

namespace mandipass::nn {
namespace {

using testing::random_tensor;

TEST(Serialize, TensorRoundTrip) {
  const Tensor t = random_tensor({2, 3, 4, 5}, 1);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  ASSERT_EQ(back.shape(), t.shape());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_FLOAT_EQ(back[i], t[i]);
  }
}

TEST(Serialize, ScalarsRoundTrip) {
  std::stringstream ss;
  write_u64(ss, 0xDEADBEEFCAFEULL);
  write_f64(ss, -3.14159);
  EXPECT_EQ(read_u64(ss), 0xDEADBEEFCAFEULL);
  EXPECT_DOUBLE_EQ(read_f64(ss), -3.14159);
}

TEST(Serialize, TagRoundTrip) {
  std::stringstream ss;
  write_tag(ss, "HELLO");
  EXPECT_NO_THROW(expect_tag(ss, "HELLO"));
}

TEST(Serialize, WrongTagThrows) {
  std::stringstream ss;
  write_tag(ss, "AAA");
  EXPECT_THROW(expect_tag(ss, "BBB"), SerializationError);
}

TEST(Serialize, TruncatedTensorThrows) {
  const Tensor t = random_tensor({4, 4}, 2);
  std::stringstream ss;
  write_tensor(ss, t);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_tensor(truncated), SerializationError);
}

TEST(Serialize, GarbageThrows) {
  std::stringstream ss("this is not a tensor stream at all");
  EXPECT_THROW(read_tensor(ss), SerializationError);
}

TEST(Serialize, LinearStateRoundTrip) {
  Rng rng(3);
  Linear a(6, 4, rng);
  Linear b(6, 4, rng);  // different random init
  std::stringstream ss;
  a.save_state(ss);
  b.load_state(ss);
  const Tensor in = random_tensor({2, 6}, 4);
  const Tensor ya = a.forward(in, false);
  const Tensor yb = b.forward(in, false);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

TEST(Serialize, LinearShapeMismatchThrows) {
  Rng rng(5);
  Linear a(6, 4, rng);
  Linear b(4, 6, rng);
  std::stringstream ss;
  a.save_state(ss);
  EXPECT_THROW(b.load_state(ss), SerializationError);
}

TEST(Serialize, BatchNormStateIncludesRunningStats) {
  BatchNorm2d a(2);
  a.forward(random_tensor({8, 2, 3, 3}, 6), true);  // builds running stats
  BatchNorm2d b(2);
  std::stringstream ss;
  a.save_state(ss);
  b.load_state(ss);
  const Tensor probe = random_tensor({2, 2, 3, 3}, 7);
  const Tensor ya = a.forward(probe, false);
  const Tensor yb = b.forward(probe, false);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

TEST(Serialize, SequentialRoundTrip) {
  Rng rng(8);
  auto make = [&rng]() {
    auto net = std::make_unique<Sequential>();
    Conv2dConfig cc;
    cc.out_channels = 3;
    net->add(std::make_unique<Conv2d>(cc, rng));
    net->add(std::make_unique<BatchNorm2d>(3));
    net->add(std::make_unique<ReLU>());
    net->add(std::make_unique<Flatten>());
    return net;
  };
  auto a = make();
  auto b = make();
  a->forward(random_tensor({4, 1, 6, 30}, 9), true);  // make BN stats non-trivial
  std::stringstream ss;
  a->save_state(ss);
  b->load_state(ss);
  const Tensor probe = random_tensor({2, 1, 6, 30}, 10);
  const Tensor ya = a->forward(probe, false);
  const Tensor yb = b->forward(probe, false);
  ASSERT_EQ(ya.shape(), yb.shape());
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

TEST(Serialize, SequentialLayerCountMismatchThrows) {
  Rng rng(11);
  Sequential a;
  a.add(std::make_unique<Linear>(2, 2, rng));
  Sequential b;
  b.add(std::make_unique<Linear>(2, 2, rng));
  b.add(std::make_unique<ReLU>());
  std::stringstream ss;
  a.save_state(ss);
  EXPECT_THROW(b.load_state(ss), SerializationError);
}

// Exhaustive truncation sweep: a model file cut at any byte offset must
// throw SerializationError, never return a short/zero-filled tensor.
TEST(Serialize, TensorTruncationAtEveryOffsetThrows) {
  const Tensor t = random_tensor({3, 5}, 12);
  std::stringstream ss;
  write_tensor(ss, t);
  const std::string blob = ss.str();
  ASSERT_GT(blob.size(), 0u);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::stringstream truncated(blob.substr(0, cut));
    EXPECT_THROW(read_tensor(truncated), SerializationError) << "no throw at offset " << cut;
  }
}

TEST(Serialize, LayerStateTruncationAtEveryOffsetThrows) {
  Rng rng(21);
  Linear layer(3, 2, rng);
  std::stringstream ss;
  layer.save_state(ss);
  const std::string blob = ss.str();
  Linear target(3, 2, rng);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::stringstream truncated(blob.substr(0, cut));
    EXPECT_THROW(target.load_state(truncated), SerializationError)
        << "no throw at offset " << cut;
  }
}

TEST(Serialize, EmptyStreamThrows) {
  std::stringstream ss;
  EXPECT_THROW(read_tensor(ss), SerializationError);
  EXPECT_THROW(read_u64(ss), SerializationError);
  EXPECT_THROW(read_f64(ss), SerializationError);
}

TEST(Serialize, OversizedRankThrows) {
  std::stringstream ss;
  ss.write("TNSR", 4);
  write_u64(ss, 5);  // rank cap is 4
  EXPECT_THROW(read_tensor(ss), SerializationError);
}

TEST(Serialize, OversizedDimensionThrows) {
  std::stringstream ss;
  ss.write("TNSR", 4);
  write_u64(ss, 1);
  write_u64(ss, (1ULL << 32) + 1);  // single dim over the per-dim cap
  EXPECT_THROW(read_tensor(ss), SerializationError);
}

// Regression: dims of 2^32 each used to wrap the element-count product
// around 2^64 (2^32 * 2^32 == 0 mod 2^64), sailing past the size cap and
// asking Tensor to allocate a bogus shape. The running cap now rejects the
// first oversized dimension before the product can wrap.
TEST(Serialize, DimensionProductOverflowThrows) {
  std::stringstream ss;
  ss.write("TNSR", 4);
  write_u64(ss, 2);
  write_u64(ss, 1ULL << 32);
  write_u64(ss, 1ULL << 32);
  EXPECT_THROW(read_tensor(ss), SerializationError);
}

TEST(Serialize, HeaderClaimsMoreDataThanPresentThrows) {
  // Valid header for a 1024-element tensor, but only 16 bytes of payload.
  std::stringstream ss;
  ss.write("TNSR", 4);
  write_u64(ss, 2);
  write_u64(ss, 32);
  write_u64(ss, 32);
  for (int i = 0; i < 4; ++i) {
    write_f64(ss, 1.0);
  }
  EXPECT_THROW(read_tensor(ss), SerializationError);
}

}  // namespace
}  // namespace mandipass::nn

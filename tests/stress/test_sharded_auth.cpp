// Concurrency stress for auth::ShardedVerifier (ctest labels:
// stress + service; runs under the default, tsan AND asan presets, and
// compiles with -DMANDIPASS_THREAD_SAFETY under the tsafety preset's
// flags since it only uses public API).
//
// Same torn-read oracle as test_concurrent_auth.cpp, now across shards
// and through the coalescing batch path: writers continuously re-key and
// revoke users while readers verify via verify_one and verify_batch
// (whose same-seed requests share packed-GEMM tiles). Every template
// generation's exact expected distance is precomputed; a decision is
// valid iff its key_version exists and its distance matches that
// generation bit-for-bit. A torn read — template floats from one
// generation, seed/version from another, or a coalesced tile mixing
// snapshots — cannot reproduce any expected distance.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "auth/gaussian_matrix.h"
#include "auth/sharded_verifier.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace mandipass::auth {
namespace {

constexpr std::size_t kDim = 24;
constexpr std::size_t kShards = 8;
constexpr std::size_t kUsers = 12;  // ~1.5 users per shard under FNV routing
constexpr std::uint32_t kGenerations = 5;
constexpr std::size_t kWriters = 3;
constexpr std::size_t kReaders = 3;
constexpr std::size_t kWriterOps = 300;
constexpr std::size_t kReaderOps = 300;

std::string user_name(std::size_t u) { return "user" + std::to_string(u); }

struct Generation {
  StoredTemplate tmpl;
  double expected_distance = 0.0;  ///< probe vs this generation's template
};

struct UserFixture {
  std::vector<float> probe;
  std::vector<Generation> generations;  ///< index = key_version
};

UserFixture make_user_fixture(std::size_t u) {
  Rng rng(0xD15C + u);
  UserFixture f;
  f.probe.resize(kDim);
  for (float& x : f.probe) {
    x = static_cast<float>(rng.uniform());
  }
  for (std::uint32_t v = 0; v < kGenerations; ++v) {
    // Re-key with a fresh seed AND a shifted reference print each
    // generation, so no torn (data, seed/version) combination can land
    // on any expected distance. Generations of different users share
    // seeds (u % 3) so the coalescing path forms real multi-user groups
    // — a tile mixing two users' snapshots would corrupt both distances.
    std::vector<float> reference = f.probe;
    reference[v % kDim] += 0.2f * static_cast<float>(v + 1);
    const std::uint64_t seed = 1000 * (u % 3 + 1) + v;
    const GaussianMatrix g(seed, kDim);
    Generation gen;
    gen.tmpl.data = g.transform(reference);
    gen.tmpl.matrix_seed = seed;
    gen.tmpl.key_version = v;
    gen.expected_distance =
        Verifier(kPaperThreshold).verify(g.transform(f.probe), gen.tmpl.data).distance;
    f.generations.push_back(std::move(gen));
  }
  return f;
}

TEST(ShardedAuthStress, StormAcrossShardsNeverObservesTornState) {
  ShardedVerifier engine(kShards);
  std::vector<UserFixture> fixtures;
  for (std::size_t u = 0; u < kUsers; ++u) {
    fixtures.push_back(make_user_fixture(u));
    engine.enroll(user_name(u), fixtures[u].generations[0].tmpl);
  }

  std::atomic<std::size_t> bad_version{0};
  std::atomic<std::size_t> bad_distance{0};
  std::atomic<std::size_t> observed{0};

  auto writer = [&](std::size_t id) {
    Rng rng(0x4444 + id);
    for (std::size_t op = 0; op < kWriterOps; ++op) {
      const std::size_t u = rng.uniform_index(kUsers);
      if (rng.bernoulli(0.15)) {
        engine.revoke(user_name(u));
      } else {
        const auto v = static_cast<std::uint32_t>(rng.uniform_index(kGenerations));
        engine.enroll(user_name(u), fixtures[u].generations[v].tmpl);
      }
    }
  };

  auto check_decision = [&](std::size_t u, const BatchDecision& d) {
    if (!d.known) {
      return;  // revoked at snapshot time — valid outcome
    }
    observed.fetch_add(1, std::memory_order_relaxed);
    if (d.key_version >= kGenerations) {
      bad_version.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (d.decision.distance != fixtures[u].generations[d.key_version].expected_distance) {
      bad_distance.fetch_add(1, std::memory_order_relaxed);
    }
  };

  auto reader = [&](std::size_t id) {
    Rng rng(0x5555 + id);
    for (std::size_t op = 0; op < kReaderOps; ++op) {
      if (rng.bernoulli(0.4)) {
        // Coalesced batch path — one request per user plus duplicates of
        // a rotating user, so same-shard AND same-seed groups form while
        // writers churn underneath.
        std::vector<VerifyRequest> requests;
        for (std::size_t u = 0; u < kUsers; ++u) {
          requests.push_back({user_name(u), fixtures[u].probe});
        }
        const std::size_t dup = op % kUsers;
        requests.push_back({user_name(dup), fixtures[dup].probe});
        requests.push_back({user_name(dup), fixtures[dup].probe});
        const BatchResult result = engine.verify_batch(requests);
        for (std::size_t u = 0; u < kUsers; ++u) {
          check_decision(u, result.decisions[u]);
        }
        check_decision(dup, result.decisions[kUsers]);
        check_decision(dup, result.decisions[kUsers + 1]);
        // Duplicates decided in one shard batch share one snapshot:
        // either both missed (revoked) or both match expectations, which
        // check_decision already enforced; their versions must agree.
        if (result.decisions[kUsers].known && result.decisions[kUsers + 1].known) {
          if (result.decisions[kUsers].key_version !=
              result.decisions[kUsers + 1].key_version) {
            bad_version.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else {
        const std::size_t u = rng.uniform_index(kUsers);
        check_decision(u, engine.verify_one(user_name(u), fixtures[u].probe));
      }
    }
  };

  common::ThreadPool::set_global_threads(4);
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back(writer, w);
  }
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back(reader, r);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  common::ThreadPool::set_global_threads(1);

  EXPECT_EQ(bad_version.load(), 0u);
  EXPECT_EQ(bad_distance.load(), 0u);
  EXPECT_GT(observed.load(), 0u);

  // Post-storm: every shard still serves consistent state.
  for (std::size_t u = 0; u < kUsers; ++u) {
    engine.enroll(user_name(u), fixtures[u].generations[0].tmpl);
    const BatchDecision d = engine.verify_one(user_name(u), fixtures[u].probe);
    ASSERT_TRUE(d.known);
    EXPECT_EQ(d.decision.distance, fixtures[u].generations[0].expected_distance);
  }
  EXPECT_EQ(engine.size(), kUsers);
}

// Many threads hammering verify_batch with duplicate-heavy batches while
// writers churn the duplicated user: the regression scenario for the
// router deadlock/order-inversion fix, under real contention. The test
// passing at all proves no deadlock; the index-alignment checks prove
// order; tsan/asan prove the memory story.
TEST(ShardedAuthStress, DuplicateHeavyBatchesUnderChurnStayOrdered) {
  ShardedVerifier engine(kShards);
  const UserFixture fa = make_user_fixture(0);
  const UserFixture fb = make_user_fixture(1);
  engine.enroll("alice", fa.generations[0].tmpl);
  engine.enroll("bob", fb.generations[0].tmpl);

  std::atomic<std::size_t> misplaced{0};
  std::atomic<bool> stop{false};

  std::thread churn([&] {
    Rng rng(0x6666);
    while (!stop.load(std::memory_order_acquire)) {
      const auto v = static_cast<std::uint32_t>(rng.uniform_index(kGenerations));
      engine.enroll("alice", fa.generations[v].tmpl);
    }
  });

  common::ThreadPool::set_global_threads(4);
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (std::size_t op = 0; op < 200; ++op) {
        // alice at even indices, bob at odd — a swap is detectable
        // because bob's generation-0 distance differs from all of
        // alice's generations.
        std::vector<VerifyRequest> requests;
        for (std::size_t i = 0; i < 16; ++i) {
          if (i % 2 == 0) {
            requests.push_back({"alice", fa.probe});
          } else {
            requests.push_back({"bob", fb.probe});
          }
        }
        const BatchResult result = engine.verify_batch(requests);
        for (std::size_t i = 0; i < 16; ++i) {
          const BatchDecision& d = result.decisions[i];
          if (!d.known) {
            continue;
          }
          const UserFixture& f = (i % 2 == 0) ? fa : fb;
          if (d.key_version >= kGenerations ||
              d.decision.distance != f.generations[d.key_version].expected_distance) {
            misplaced.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : readers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  churn.join();
  common::ThreadPool::set_global_threads(1);

  EXPECT_EQ(misplaced.load(), 0u);
}

}  // namespace
}  // namespace mandipass::auth

// Concurrency stress for BatchVerifier / TemplateStore (ctest label:
// stress; runs under the tsan preset in CI).
//
// Writers continuously re-key and revoke users while readers verify.
// The invariant under test: a reader must never observe a torn template.
// Every template generation v of user u is precomputed, together with
// the exact distance a fixed probe scores against it; a decision is
// valid iff its reported key_version is a generation that exists AND its
// distance equals that generation's expected distance bit-for-bit. A
// torn read (data from one generation, seed/version from another) fails
// the distance check; a read of a never-enrolled generation fails the
// version check. TSan independently checks the lock protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "auth/batch_verifier.h"
#include "auth/gaussian_matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace mandipass::auth {
namespace {

constexpr std::size_t kDim = 24;
constexpr std::size_t kUsers = 4;
constexpr std::uint32_t kGenerations = 5;
constexpr std::size_t kWriters = 3;
constexpr std::size_t kReaders = 3;
constexpr std::size_t kWriterOps = 400;
constexpr std::size_t kReaderOps = 400;

std::string user_name(std::size_t u) { return "user" + std::to_string(u); }

struct Generation {
  StoredTemplate tmpl;
  double expected_distance = 0.0;  ///< probe vs this generation's template
};

struct UserFixture {
  std::vector<float> probe;
  std::vector<Generation> generations;  ///< index = key_version
};

UserFixture make_user_fixture(std::size_t u) {
  Rng rng(0xABCD + u);
  UserFixture f;
  f.probe.resize(kDim);
  for (float& x : f.probe) {
    x = static_cast<float>(rng.uniform());
  }
  for (std::uint32_t v = 0; v < kGenerations; ++v) {
    // Each generation re-keys with a fresh seed AND a slightly different
    // reference print, so both the matrix and the data change across
    // generations — a torn combination cannot reproduce any expected
    // distance.
    std::vector<float> reference = f.probe;
    reference[v % kDim] += 0.2f * static_cast<float>(v + 1);
    const std::uint64_t seed = 1000 * (u + 1) + v;
    const GaussianMatrix g(seed, kDim);
    Generation gen;
    gen.tmpl.data = g.transform(reference);
    gen.tmpl.matrix_seed = seed;
    gen.tmpl.key_version = v;
    gen.expected_distance = Verifier(kPaperThreshold)
                                .verify(g.transform(f.probe), gen.tmpl.data)
                                .distance;
    f.generations.push_back(std::move(gen));
  }
  return f;
}

TEST(ConcurrentAuthStress, WritersAndReadersNeverObserveTornTemplates) {
  BatchVerifier engine;
  std::vector<UserFixture> fixtures;
  for (std::size_t u = 0; u < kUsers; ++u) {
    fixtures.push_back(make_user_fixture(u));
    engine.enroll(user_name(u), fixtures[u].generations[0].tmpl);
  }

  std::atomic<std::size_t> bad_version{0};
  std::atomic<std::size_t> bad_distance{0};
  std::atomic<std::size_t> observed{0};

  auto writer = [&](std::size_t id) {
    Rng rng(0x1111 + id);
    for (std::size_t op = 0; op < kWriterOps; ++op) {
      const std::size_t u = rng.uniform_index(kUsers);
      if (rng.bernoulli(0.15)) {
        engine.revoke(user_name(u));
      } else {
        const auto v = static_cast<std::uint32_t>(rng.uniform_index(kGenerations));
        engine.enroll(user_name(u), fixtures[u].generations[v].tmpl);
      }
    }
  };

  auto check_decision = [&](std::size_t u, const BatchDecision& d) {
    if (!d.known) {
      return;  // revoked at snapshot time — valid outcome
    }
    observed.fetch_add(1, std::memory_order_relaxed);
    if (d.key_version >= kGenerations) {
      bad_version.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Same inputs, same code path => the distance must match the
    // precomputed value exactly; any deviation means a torn read.
    if (d.decision.distance != fixtures[u].generations[d.key_version].expected_distance) {
      bad_distance.fetch_add(1, std::memory_order_relaxed);
    }
  };

  auto reader = [&](std::size_t id) {
    Rng rng(0x2222 + id);
    for (std::size_t op = 0; op < kReaderOps; ++op) {
      if (rng.bernoulli(0.2)) {
        // Batch path: one request per user, fanned out over the pool.
        std::vector<VerifyRequest> requests;
        for (std::size_t u = 0; u < kUsers; ++u) {
          requests.push_back({user_name(u), fixtures[u].probe});
        }
        const BatchResult result = engine.verify_batch(requests);
        for (std::size_t u = 0; u < kUsers; ++u) {
          check_decision(u, result.decisions[u]);
        }
      } else {
        const std::size_t u = rng.uniform_index(kUsers);
        check_decision(u, engine.verify_one(user_name(u), fixtures[u].probe));
      }
    }
  };

  common::ThreadPool::set_global_threads(4);
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back(writer, w);
  }
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back(reader, r);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  common::ThreadPool::set_global_threads(1);

  EXPECT_EQ(bad_version.load(), 0u);
  EXPECT_EQ(bad_distance.load(), 0u);
  // The schedule is nondeterministic but with 3 writers revoking only
  // 15% of the time, readers must have seen plenty of live templates.
  EXPECT_GT(observed.load(), 0u);

  // Post-stress: the engine still works and holds consistent state.
  for (std::size_t u = 0; u < kUsers; ++u) {
    engine.enroll(user_name(u), fixtures[u].generations[0].tmpl);
    const BatchDecision d = engine.verify_one(user_name(u), fixtures[u].probe);
    ASSERT_TRUE(d.known);
    EXPECT_EQ(d.decision.distance, fixtures[u].generations[0].expected_distance);
  }
}

TEST(ConcurrentAuthStress, ConcurrentEnrollsOfSameUserStayAtomic) {
  BatchVerifier engine;
  const UserFixture fixture = make_user_fixture(0);
  const std::string name = user_name(0);
  engine.enroll(name, fixture.generations[0].tmpl);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn{0};

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(0x3333 + w);
      for (std::size_t op = 0; op < 500; ++op) {
        const auto v = static_cast<std::uint32_t>(rng.uniform_index(kGenerations));
        engine.enroll(name, fixture.generations[v].tmpl);
      }
    });
  }
  std::thread checker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const BatchDecision d = engine.verify_one(name, fixture.probe);
      if (d.known &&
          d.decision.distance != fixture.generations[d.key_version].expected_distance) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  checker.join();
  EXPECT_EQ(torn.load(), 0u);
}

}  // namespace
}  // namespace mandipass::auth

#include "imu/recording_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "imu/sensor_model.h"

namespace mandipass::imu {
namespace {

RawRecording sample_recording(std::size_t n = 20) {
  Rng rng(5);
  SensorModel sensor(mpu9250_spec(), rng);
  std::vector<MotionSample> trace(n);
  for (auto& m : trace) {
    m.accel_g = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    m.gyro_dps = {rng.uniform(-10.0, 10.0), 0.0, 5.0};
  }
  return sensor.record(trace, 350.0);
}

TEST(RecordingIo, RoundTrip) {
  const auto rec = sample_recording();
  std::stringstream ss;
  write_recording_csv(ss, rec);
  const auto back = read_recording_csv(ss);
  EXPECT_DOUBLE_EQ(back.sample_rate_hz, rec.sample_rate_hz);
  ASSERT_EQ(back.sample_count(), rec.sample_count());
  for (std::size_t a = 0; a < kAxisCount; ++a) {
    for (std::size_t i = 0; i < rec.sample_count(); ++i) {
      EXPECT_DOUBLE_EQ(back.axes[a][i], rec.axes[a][i]);
    }
  }
}

TEST(RecordingIo, HeaderContainsSampleRate) {
  const auto rec = sample_recording(3);
  std::stringstream ss;
  write_recording_csv(ss, rec);
  EXPECT_NE(ss.str().find("sample_rate_hz=350"), std::string::npos);
  EXPECT_NE(ss.str().find("ax,ay,az,gx,gy,gz"), std::string::npos);
}

TEST(RecordingIo, MissingMagicThrows) {
  std::stringstream ss("not a recording\n");
  EXPECT_THROW(read_recording_csv(ss), SerializationError);
}

TEST(RecordingIo, MissingRateThrows) {
  std::stringstream ss("# mandipass-recording v1\nax,ay,az,gx,gy,gz\n1,2,3,4,5,6\n");
  EXPECT_THROW(read_recording_csv(ss), SerializationError);
}

TEST(RecordingIo, BadRateThrows) {
  std::stringstream ss(
      "# mandipass-recording v1\n# sample_rate_hz=0\nax,ay,az,gx,gy,gz\n1,2,3,4,5,6\n");
  EXPECT_THROW(read_recording_csv(ss), SerializationError);
}

TEST(RecordingIo, WrongColumnCountThrows) {
  std::stringstream ss(
      "# mandipass-recording v1\n# sample_rate_hz=350\nax,ay,az,gx,gy,gz\n1,2,3\n");
  EXPECT_THROW(read_recording_csv(ss), SerializationError);
}

TEST(RecordingIo, NonNumericCellThrows) {
  std::stringstream ss(
      "# mandipass-recording v1\n# sample_rate_hz=350\nax,ay,az,gx,gy,gz\n1,2,x,4,5,6\n");
  EXPECT_THROW(read_recording_csv(ss), SerializationError);
}

TEST(RecordingIo, EmptyBodyThrows) {
  std::stringstream ss("# mandipass-recording v1\n# sample_rate_hz=350\nax,ay,az,gx,gy,gz\n");
  EXPECT_THROW(read_recording_csv(ss), SerializationError);
}

TEST(RecordingIo, CrlfLineEndingsParse) {
  const auto rec = sample_recording(5);
  std::stringstream ss;
  write_recording_csv(ss, rec);
  // Re-emit the file the way a Windows tool would: every \n becomes \r\n.
  std::string crlf;
  for (char c : ss.str()) {
    if (c == '\n') {
      crlf += '\r';
    }
    crlf += c;
  }
  std::stringstream windows(crlf);
  const auto back = read_recording_csv(windows);
  EXPECT_DOUBLE_EQ(back.sample_rate_hz, rec.sample_rate_hz);
  ASSERT_EQ(back.sample_count(), rec.sample_count());
  for (std::size_t a = 0; a < kAxisCount; ++a) {
    EXPECT_EQ(back.axes[a], rec.axes[a]);
  }
}

TEST(RecordingIo, TrailingAndInteriorBlankLinesIgnored) {
  std::stringstream ss(
      "# mandipass-recording v1\n# sample_rate_hz=350\nax,ay,az,gx,gy,gz\n"
      "1,2,3,4,5,6\n\n   \n7,8,9,10,11,12\n\t\n\n");
  const auto rec = read_recording_csv(ss);
  ASSERT_EQ(rec.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(rec.axes[0][1], 7.0);
  EXPECT_DOUBLE_EQ(rec.axes[5][0], 6.0);
}

TEST(RecordingIo, ParseErrorNamesOffendingLine) {
  // The bad cell sits on physical line 6 (magic, rate, header, row, blank,
  // bad row); the error must say so instead of making the user bisect.
  std::stringstream ss(
      "# mandipass-recording v1\n# sample_rate_hz=350\nax,ay,az,gx,gy,gz\n"
      "1,2,3,4,5,6\n\n1,2,oops,4,5,6\n");
  try {
    read_recording_csv(ss);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("line 6"), std::string::npos) << e.what();
  }
}

TEST(RecordingIo, ColumnCountErrorNamesOffendingLine) {
  std::stringstream ss(
      "# mandipass-recording v1\n# sample_rate_hz=350\nax,ay,az,gx,gy,gz\n1,2,3\n");
  try {
    read_recording_csv(ss);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
}

TEST(RecordingIo, FileRoundTrip) {
  const auto rec = sample_recording(7);
  const std::string path = ::testing::TempDir() + "/mandipass_rec_test.csv";
  save_recording(path, rec);
  const auto back = load_recording(path);
  EXPECT_EQ(back.sample_count(), rec.sample_count());
}

TEST(RecordingIo, MissingFileThrows) {
  EXPECT_THROW(load_recording("/nonexistent/dir/file.csv"), SerializationError);
}

// A streambuf whose underflow throws after `good_bytes` characters,
// simulating a disk that dies mid-read. std::getline swallows the exception
// and sets badbit, which used to look exactly like a clean EOF — the reader
// must distinguish the two instead of returning a shortened recording.
class DyingBuf : public std::streambuf {
 public:
  DyingBuf(std::string data, std::size_t good_bytes)
      : data_(std::move(data)), good_bytes_(good_bytes) {}

 protected:
  int_type underflow() override {
    if (pos_ >= good_bytes_ || pos_ >= data_.size()) {
      throw std::ios_base::failure("simulated disk error");
    }
    setg(data_.data() + pos_, data_.data() + pos_, data_.data() + pos_ + 1);
    ++pos_;
    return traits_type::to_int_type(data_[pos_ - 1]);
  }

 private:
  std::string data_;
  std::size_t good_bytes_;
  std::size_t pos_ = 0;
};

TEST(RecordingIo, StreamErrorMidRowsThrowsInsteadOfTruncating) {
  const auto rec = sample_recording();
  std::stringstream ss;
  write_recording_csv(ss, rec);
  const std::string blob = ss.str();
  // Die after ~80% of the payload: headers parse fine, rows are mid-flight.
  DyingBuf buf(blob, blob.size() * 8 / 10);
  std::istream dying(&buf);
  EXPECT_THROW(read_recording_csv(dying), SerializationError);
}

}  // namespace
}  // namespace mandipass::imu

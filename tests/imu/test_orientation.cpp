#include "imu/orientation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mandipass::imu {
namespace {

TEST(Rotation, IdentityByDefault) {
  const Rotation r;
  const auto v = r.apply(std::array<double, 3>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(Rotation, Yaw90MapsXToY) {
  const auto r = Rotation::about_z_deg(90.0);
  const auto v = r.apply(std::array<double, 3>{1.0, 0.0, 0.0});
  EXPECT_NEAR(v[0], 0.0, 1e-12);
  EXPECT_NEAR(v[1], 1.0, 1e-12);
  EXPECT_NEAR(v[2], 0.0, 1e-12);
}

TEST(Rotation, Yaw90LeavesZ) {
  const auto r = Rotation::about_z_deg(90.0);
  const auto v = r.apply(std::array<double, 3>{0.0, 0.0, 2.0});
  EXPECT_NEAR(v[2], 2.0, 1e-12);
}

TEST(Rotation, FourQuarterTurnsAreIdentity) {
  const auto q = Rotation::about_z_deg(90.0);
  const auto full = q.compose(q).compose(q).compose(q);
  const auto v = full.apply(std::array<double, 3>{0.3, -0.4, 0.9});
  EXPECT_NEAR(v[0], 0.3, 1e-12);
  EXPECT_NEAR(v[1], -0.4, 1e-12);
  EXPECT_NEAR(v[2], 0.9, 1e-12);
}

TEST(Rotation, PreservesNorm) {
  const auto r = Rotation::from_euler_deg(33.0, -20.0, 75.0);
  const std::array<double, 3> v{0.6, -0.8, 0.5};
  const auto w = r.apply(v);
  const double n_in = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
  const double n_out = w[0] * w[0] + w[1] * w[1] + w[2] * w[2];
  EXPECT_NEAR(n_in, n_out, 1e-12);
}

TEST(Rotation, InverseUndoes) {
  const auto r = Rotation::from_euler_deg(10.0, 20.0, 30.0);
  const auto ri = r.inverse();
  const std::array<double, 3> v{1.0, -2.0, 0.5};
  const auto w = ri.apply(r.apply(v));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(w[i], v[i], 1e-12);
  }
}

TEST(Rotation, ComposeMatchesSequentialApply) {
  const auto a = Rotation::from_euler_deg(15.0, 0.0, 0.0);
  const auto b = Rotation::from_euler_deg(0.0, 25.0, 0.0);
  const std::array<double, 3> v{0.1, 0.2, 0.3};
  const auto lhs = a.compose(b).apply(v);
  const auto rhs = a.apply(b.apply(v));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-12);
  }
}

TEST(Rotation, RotatesBothImuTriples) {
  const auto r = Rotation::about_z_deg(90.0);
  MotionSample s;
  s.accel_g = {1.0, 0.0, 0.0};
  s.gyro_dps = {0.0, 1.0, 0.0};
  const auto out = r.apply(s);
  EXPECT_NEAR(out.accel_g[1], 1.0, 1e-12);
  EXPECT_NEAR(out.gyro_dps[0], -1.0, 1e-12);
}

}  // namespace
}  // namespace mandipass::imu

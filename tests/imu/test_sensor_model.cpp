#include "imu/sensor_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "imu/types.h"

namespace mandipass::imu {
namespace {

TEST(SensorSpec, FactoryNames) {
  EXPECT_EQ(mpu9250_spec().name, "MPU-9250");
  EXPECT_EQ(mpu6050_spec().name, "MPU-6050");
}

TEST(SensorSpec, Mpu6050IsNoisier) {
  EXPECT_GT(mpu6050_spec().accel_noise_lsb, mpu9250_spec().accel_noise_lsb);
  EXPECT_GT(mpu6050_spec().glitch_probability, mpu9250_spec().glitch_probability);
}

TEST(AxisName, AllNamed) {
  EXPECT_EQ(axis_name(Axis::Ax), "ax");
  EXPECT_EQ(axis_name(Axis::Az), "az");
  EXPECT_EQ(axis_name(Axis::Gz), "gz");
}

TEST(SensorModel, QuantisesToIntegers) {
  Rng rng(1);
  SensorModel sensor(mpu9250_spec(), rng);
  MotionSample m;
  m.accel_g = {0.1234, -0.5, 0.98};
  const auto frame = sensor.sample(m);
  for (double v : frame) {
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(SensorModel, ScalesAccelBySensitivity) {
  // Disable noise/glitches to check the pure scaling.
  SensorSpec spec = mpu9250_spec();
  spec.accel_noise_lsb = 0.0;
  spec.gyro_noise_lsb = 0.0;
  spec.glitch_probability = 0.0;
  Rng rng(2);
  SensorModel sensor(spec, rng);
  MotionSample m;
  m.accel_g = {1.0, 0.0, 0.0};
  const auto frame = sensor.sample(m);
  EXPECT_DOUBLE_EQ(frame[0], 16384.0);
}

TEST(SensorModel, ScalesGyroBySensitivity) {
  SensorSpec spec = mpu9250_spec();
  spec.accel_noise_lsb = 0.0;
  spec.gyro_noise_lsb = 0.0;
  spec.glitch_probability = 0.0;
  Rng rng(3);
  SensorModel sensor(spec, rng);
  MotionSample m;
  m.gyro_dps = {0.0, 0.0, 10.0};
  const auto frame = sensor.sample(m);
  EXPECT_DOUBLE_EQ(frame[5], 1310.0);
}

TEST(SensorModel, SaturatesAtFullScale) {
  SensorSpec spec = mpu9250_spec();
  spec.glitch_probability = 0.0;
  Rng rng(4);
  SensorModel sensor(spec, rng);
  MotionSample m;
  m.accel_g = {100.0, -100.0, 0.0};
  const auto frame = sensor.sample(m);
  EXPECT_DOUBLE_EQ(frame[0], 32767.0);
  EXPECT_DOUBLE_EQ(frame[1], -32767.0);
}

TEST(SensorModel, NoiseHasConfiguredSigma) {
  SensorSpec spec = mpu9250_spec();
  spec.glitch_probability = 0.0;
  Rng rng(5);
  SensorModel sensor(spec, rng);
  std::vector<double> samples;
  MotionSample still;  // zero motion: output is pure noise
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(sensor.sample(still)[0]);
  }
  EXPECT_NEAR(mandipass::stddev(samples), spec.accel_noise_lsb, spec.accel_noise_lsb * 0.05);
}

TEST(SensorModel, GlitchesAppearAtConfiguredRate) {
  SensorSpec spec = mpu9250_spec();
  spec.accel_noise_lsb = 1.0;
  spec.glitch_probability = 0.02;
  Rng rng(6);
  SensorModel sensor(spec, rng);
  MotionSample still;
  int glitches = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(sensor.sample(still)[0]) > 1000.0) {
      ++glitches;
    }
  }
  EXPECT_NEAR(static_cast<double>(glitches) / n, 0.02, 0.004);
}

TEST(SensorModel, AppliesMountingOrientation) {
  SensorSpec spec = mpu9250_spec();
  spec.accel_noise_lsb = 0.0;
  spec.gyro_noise_lsb = 0.0;
  spec.glitch_probability = 0.0;
  Rng rng(7);
  SensorModel sensor(spec, rng);
  sensor.set_orientation(Rotation::about_z_deg(90.0));
  MotionSample m;
  m.accel_g = {1.0, 0.0, 0.0};
  const auto frame = sensor.sample(m);
  EXPECT_NEAR(frame[0], 0.0, 1.0);
  EXPECT_NEAR(frame[1], 16384.0, 1.0);
}

TEST(SensorModel, RecordProducesAllAxes) {
  Rng rng(8);
  SensorModel sensor(mpu9250_spec(), rng);
  std::vector<MotionSample> trace(100);
  const RawRecording rec = sensor.record(trace, 350.0);
  EXPECT_EQ(rec.sample_count(), 100u);
  EXPECT_DOUBLE_EQ(rec.sample_rate_hz, 350.0);
  for (const auto& axis : rec.axes) {
    EXPECT_EQ(axis.size(), 100u);
  }
}

TEST(SensorModel, DeterministicGivenSameRngSeed) {
  Rng rng1(9);
  Rng rng2(9);
  SensorModel a(mpu9250_spec(), rng1);
  SensorModel b(mpu9250_spec(), rng2);
  MotionSample m;
  m.accel_g = {0.1, 0.2, 0.3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.sample(m), b.sample(m));
  }
}

}  // namespace
}  // namespace mandipass::imu

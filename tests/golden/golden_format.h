// Shared fixture format for the golden-pipeline regression suite.
//
// One committed binary file captures a full MandiPass trace generated
// with the seeded simulator:
//
//   raw IMU probe recording  ->  SignalArray  ->  GradientArray  ->
//   MandiblePrint prefix  ->  (template, genuine + impostor Decision)
//
// plus the enrolment and impostor gradient arrays and the extractor
// configuration needed to replay every stage. The test re-runs each
// stage from the *stored* input of that stage, so a regression points at
// the exact pipeline step that changed.
//
// Regenerate with:  build/tests/golden_gen tests/golden/data
#pragma once

#include <array>
#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "common/io.h"
#include "core/extractor.h"
#include "core/signal_array.h"
#include "imu/types.h"
#include "nn/serialize.h"

namespace mandipass::testing {

inline constexpr const char* kGoldenTag = "MANDIPASS-GOLDEN-V1";
inline constexpr const char* kGoldenFileName = "golden_pipeline.bin";

struct GoldenFixture {
  imu::RawRecording probe_recording;   ///< stage-1 input
  core::SignalArray probe_signal;      ///< expected stage-1 output
  core::GradientArray probe_gradient;  ///< expected stage-2 output
  core::GradientArray enroll_gradient;
  core::GradientArray impostor_gradient;

  core::ExtractorConfig extractor;     ///< untrained, seeded weights
  std::vector<float> print_prefix;     ///< expected probe MandiblePrint prefix

  std::uint64_t gauss_seed = 0;        ///< cancelable-transform key
  double genuine_distance = 0.0;       ///< probe vs enrolment template
  double impostor_distance = 0.0;
  double threshold = 0.0;              ///< separates the two with margin
};

namespace detail {

inline void write_doubles(std::ostream& os, const std::vector<double>& v) {
  nn::write_u64(os, v.size());
  common::write_exact(os, v.data(), v.size() * sizeof(double), "golden doubles");
}

inline std::vector<double> read_doubles(std::istream& is) {
  const std::uint64_t n = nn::read_u64(is);
  if (n > (1ULL << 24)) {
    throw SerializationError("golden fixture: implausible vector length");
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  common::read_exact(is, v.data(), v.size() * sizeof(double), "golden doubles");
  return v;
}

inline void write_gradient(std::ostream& os, const core::GradientArray& g) {
  for (const auto& axis : g.positive) {
    write_doubles(os, axis);
  }
  for (const auto& axis : g.negative) {
    write_doubles(os, axis);
  }
}

inline core::GradientArray read_gradient(std::istream& is) {
  core::GradientArray g;
  for (auto& axis : g.positive) {
    axis = read_doubles(is);
  }
  for (auto& axis : g.negative) {
    axis = read_doubles(is);
  }
  return g;
}

}  // namespace detail

inline void save_golden(std::ostream& os, const GoldenFixture& f) {
  nn::write_tag(os, kGoldenTag);
  nn::write_f64(os, f.probe_recording.sample_rate_hz);
  for (const auto& axis : f.probe_recording.axes) {
    detail::write_doubles(os, axis);
  }
  for (const auto& axis : f.probe_signal.axes) {
    detail::write_doubles(os, axis);
  }
  detail::write_gradient(os, f.probe_gradient);
  detail::write_gradient(os, f.enroll_gradient);
  detail::write_gradient(os, f.impostor_gradient);

  nn::write_u64(os, f.extractor.axes);
  nn::write_u64(os, f.extractor.half_length);
  nn::write_u64(os, f.extractor.embedding_dim);
  for (const std::size_t c : f.extractor.channels) {
    nn::write_u64(os, c);
  }
  nn::write_u64(os, f.extractor.seed);

  nn::write_u64(os, f.print_prefix.size());
  common::write_exact(os, f.print_prefix.data(), f.print_prefix.size() * sizeof(float),
                      "golden print prefix");

  nn::write_u64(os, f.gauss_seed);
  nn::write_f64(os, f.genuine_distance);
  nn::write_f64(os, f.impostor_distance);
  nn::write_f64(os, f.threshold);
  MANDIPASS_EXPECTS(os.good());
}

inline GoldenFixture load_golden(std::istream& is) {
  GoldenFixture f;
  nn::expect_tag(is, kGoldenTag);
  f.probe_recording.sample_rate_hz = nn::read_f64(is);
  for (auto& axis : f.probe_recording.axes) {
    axis = detail::read_doubles(is);
  }
  for (auto& axis : f.probe_signal.axes) {
    axis = detail::read_doubles(is);
  }
  f.probe_gradient = detail::read_gradient(is);
  f.enroll_gradient = detail::read_gradient(is);
  f.impostor_gradient = detail::read_gradient(is);

  f.extractor.axes = static_cast<std::size_t>(nn::read_u64(is));
  f.extractor.half_length = static_cast<std::size_t>(nn::read_u64(is));
  f.extractor.embedding_dim = static_cast<std::size_t>(nn::read_u64(is));
  for (std::size_t& c : f.extractor.channels) {
    c = static_cast<std::size_t>(nn::read_u64(is));
  }
  f.extractor.seed = nn::read_u64(is);

  const std::uint64_t prefix = nn::read_u64(is);
  if (prefix > f.extractor.embedding_dim) {
    throw SerializationError("golden fixture: implausible prefix length");
  }
  f.print_prefix.resize(static_cast<std::size_t>(prefix));
  common::read_exact(is, f.print_prefix.data(), f.print_prefix.size() * sizeof(float),
                     "golden print prefix");

  f.gauss_seed = nn::read_u64(is);
  f.genuine_distance = nn::read_f64(is);
  f.impostor_distance = nn::read_f64(is);
  f.threshold = nn::read_f64(is);
  return f;
}

}  // namespace mandipass::testing

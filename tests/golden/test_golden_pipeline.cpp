// Golden-pipeline regression suite (ctest label: golden).
//
// tests/golden/data/golden_pipeline.bin is a committed trace of the full
// MandiPass pipeline produced by golden_gen from the seeded simulator.
// Each test below replays ONE stage from the *stored* input of that
// stage and compares against the stored output, so a failure names the
// exact stage whose numerics drifted.
//
// Tolerances (documented here, asserted below):
//   preprocessing (double)        1e-9  absolute   — pure double pipeline,
//                                                    deterministic given IEEE-754
//   gradient build (double)       1e-9  absolute   — linear resampling only
//   MandiblePrint prefix (float)  1e-4  absolute   — float GEMM + libm
//                                                    (exp in sigmoid/BN) may
//                                                    differ across platforms
//   cosine distances (double)     1e-4  absolute   — inherits print noise
//   decisions (bool)              exact            — the generator enforces a
//                                                    > 0.01 genuine/impostor gap
//                                                    around the midpoint threshold,
//                                                    50x the distance tolerance
//                                                    on each side
//
// A legitimate pipeline change (new filter, different resampling, new
// extractor topology) must regenerate the fixture via
//   build/tests/golden_gen tests/golden/data
// and the commit message must say which stage changed and why.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "auth/cosine.h"
#include "auth/gaussian_matrix.h"
#include "auth/verifier.h"
#include "core/extractor.h"
#include "core/preprocessor.h"
#include "golden/golden_format.h"

namespace mandipass::testing {
namespace {

constexpr double kDoubleTol = 1e-9;
constexpr double kPrintTol = 1e-4;
constexpr double kDistanceTol = 1e-4;

class GoldenPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string path = std::string(MANDIPASS_GOLDEN_DIR) + "/" + kGoldenFileName;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden fixture " << path
                    << " — regenerate with: build/tests/golden_gen tests/golden/data";
    fixture_ = new GoldenFixture(load_golden(in));
  }

  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  const GoldenFixture& fixture() const { return *fixture_; }

 private:
  static GoldenFixture* fixture_;
};

GoldenFixture* GoldenPipeline::fixture_ = nullptr;

void expect_axes_near(const std::array<std::vector<double>, imu::kAxisCount>& actual,
                      const std::array<std::vector<double>, imu::kAxisCount>& expected,
                      double tol, const char* stage) {
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    ASSERT_EQ(actual[a].size(), expected[a].size()) << stage << " axis " << a;
    for (std::size_t i = 0; i < actual[a].size(); ++i) {
      ASSERT_NEAR(actual[a][i], expected[a][i], tol)
          << stage << " axis " << a << " sample " << i;
    }
  }
}

TEST_F(GoldenPipeline, FixtureIsSelfConsistent) {
  const GoldenFixture& f = fixture();
  EXPECT_GT(f.probe_recording.sample_count(), 0u);
  EXPECT_EQ(f.probe_signal.segment_length(), core::kDefaultSegmentLength);
  EXPECT_EQ(f.probe_gradient.half_length(), f.extractor.half_length);
  EXPECT_FALSE(f.print_prefix.empty());
  EXPECT_LE(f.print_prefix.size(), f.extractor.embedding_dim);
  EXPECT_LT(f.genuine_distance, f.threshold);
  EXPECT_GT(f.impostor_distance, f.threshold);
}

TEST_F(GoldenPipeline, PreprocessingMatchesStoredSignalArray) {
  const core::Preprocessor prep;
  const core::SignalArray signal = prep.process(fixture().probe_recording);
  expect_axes_near(signal.axes, fixture().probe_signal.axes, kDoubleTol, "signal");
}

TEST_F(GoldenPipeline, GradientBuildMatchesStoredGradientArray) {
  const core::GradientArray g = core::build_gradient_array(fixture().probe_signal);
  expect_axes_near(g.positive, fixture().probe_gradient.positive, kDoubleTol,
                   "positive gradient");
  expect_axes_near(g.negative, fixture().probe_gradient.negative, kDoubleTol,
                   "negative gradient");
}

TEST_F(GoldenPipeline, ExtractorMatchesStoredPrintPrefix) {
  core::BiometricExtractor extractor(fixture().extractor);
  const std::vector<float> print = extractor.extract(fixture().probe_gradient);
  ASSERT_EQ(print.size(), fixture().extractor.embedding_dim);
  for (std::size_t i = 0; i < fixture().print_prefix.size(); ++i) {
    ASSERT_NEAR(print[i], fixture().print_prefix[i], kPrintTol) << "dim " << i;
  }
}

TEST_F(GoldenPipeline, DistancesMatchStoredValues) {
  const GoldenFixture& f = fixture();
  core::BiometricExtractor extractor(f.extractor);
  const auth::GaussianMatrix g(f.gauss_seed, f.extractor.embedding_dim);
  const auto sealed = g.transform(extractor.extract(f.enroll_gradient));
  const double genuine =
      auth::cosine_distance(g.transform(extractor.extract(f.probe_gradient)), sealed);
  const double impostor =
      auth::cosine_distance(g.transform(extractor.extract(f.impostor_gradient)), sealed);
  EXPECT_NEAR(genuine, f.genuine_distance, kDistanceTol);
  EXPECT_NEAR(impostor, f.impostor_distance, kDistanceTol);
}

TEST_F(GoldenPipeline, DecisionsAreExact) {
  const GoldenFixture& f = fixture();
  core::BiometricExtractor extractor(f.extractor);
  const auth::GaussianMatrix g(f.gauss_seed, f.extractor.embedding_dim);
  const auto sealed = g.transform(extractor.extract(f.enroll_gradient));
  const auth::Verifier verifier(f.threshold);
  EXPECT_TRUE(
      verifier.verify(g.transform(extractor.extract(f.probe_gradient)), sealed).accepted);
  EXPECT_FALSE(
      verifier.verify(g.transform(extractor.extract(f.impostor_gradient)), sealed).accepted);
}

}  // namespace
}  // namespace mandipass::testing

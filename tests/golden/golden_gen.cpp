// Golden-fixture generator. Runs the seeded simulator + full pipeline
// once and writes tests/golden/data/golden_pipeline.bin. The fixture is
// committed; regenerate ONLY when a pipeline stage changes semantics on
// purpose, and say so in the commit message.
//
// Usage: golden_gen <output-dir>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "auth/cosine.h"
#include "auth/gaussian_matrix.h"
#include "common/error.h"
#include "core/extractor.h"
#include "core/preprocessor.h"
#include "golden/golden_format.h"
#include "vibration/population.h"
#include "vibration/session.h"

using namespace mandipass;

namespace {

constexpr std::uint64_t kPopulationSeed = 31337;
constexpr std::uint64_t kSessionSeedBase = 424242;
constexpr std::size_t kSeedCandidates = 64;
constexpr std::size_t kWeightSeedCandidates = 8;
constexpr std::size_t kPrefixLen = 16;
// Headroom for the fixture's exact decision assertions: the untrained
// (seeded-weights) extractor separates people only weakly, so the
// generator scans session seeds and keeps the widest genuine/impostor
// gap. With the threshold at the midpoint, each decision has >= kMinGap/2
// of margin — 50x the golden test's 1e-4 distance tolerance.
constexpr double kMinGap = 0.01;

core::ExtractorConfig golden_extractor_config() {
  core::ExtractorConfig cfg;
  cfg.embedding_dim = 64;
  cfg.channels = {8, 12, 16};
  return cfg;  // axes / half_length / weight seed: library defaults
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: golden_gen <output-dir>\n";
    return 2;
  }

  vibration::PopulationGenerator population(kPopulationSeed);
  const auto people = population.sample_population(2);
  const vibration::SessionConfig session;
  const core::Preprocessor prep;
  const std::uint64_t gauss_seed = 0x60D1DEA5;

  // Deterministic seed scan: the untrained extractor separates people only
  // weakly, so sweep session seeds x weight-init seeds and keep the widest
  // genuine/impostor gap. The scan is pure function of the constants above,
  // so regeneration is reproducible.
  testing::GoldenFixture f;
  double best_gap = -1.0;
  for (std::size_t w = 0; w < kWeightSeedCandidates; ++w) {
    core::ExtractorConfig extractor_config = golden_extractor_config();
    extractor_config.seed += w;
    core::BiometricExtractor extractor(extractor_config);
    const auth::GaussianMatrix g(gauss_seed, extractor_config.embedding_dim);
    for (std::size_t i = 0; i < kSeedCandidates; ++i) {
      Rng session_rng(kSessionSeedBase + i);
      vibration::SessionRecorder genuine(people[0], session_rng);
      vibration::SessionRecorder impostor(people[1], session_rng);

      testing::GoldenFixture candidate;
      const imu::RawRecording enroll_rec = genuine.record(session);
      candidate.probe_recording = genuine.record(session);
      const imu::RawRecording impostor_rec = impostor.record(session);

      candidate.probe_signal = prep.process(candidate.probe_recording);
      candidate.probe_gradient = core::build_gradient_array(candidate.probe_signal);
      candidate.enroll_gradient = core::build_gradient_array(prep.process(enroll_rec));
      candidate.impostor_gradient = core::build_gradient_array(prep.process(impostor_rec));

      candidate.extractor = extractor_config;
      const auto probe_print = extractor.extract(candidate.probe_gradient);
      const auto enroll_print = extractor.extract(candidate.enroll_gradient);
      const auto impostor_print = extractor.extract(candidate.impostor_gradient);
      candidate.print_prefix.assign(
          probe_print.begin(), probe_print.begin() + static_cast<std::ptrdiff_t>(kPrefixLen));

      candidate.gauss_seed = gauss_seed;
      const auto sealed = g.transform(enroll_print);
      candidate.genuine_distance = auth::cosine_distance(g.transform(probe_print), sealed);
      candidate.impostor_distance = auth::cosine_distance(g.transform(impostor_print), sealed);
      candidate.threshold = 0.5 * (candidate.genuine_distance + candidate.impostor_distance);

      const double gap = candidate.impostor_distance - candidate.genuine_distance;
      if (gap > best_gap) {
        best_gap = gap;
        f = std::move(candidate);
        std::cout << "weight seed +" << w << ", session seed " << (kSessionSeedBase + i)
                  << ": gap " << gap << std::endl;
      }
    }
  }

  std::cout << "genuine distance:  " << f.genuine_distance << "\n"
            << "impostor distance: " << f.impostor_distance << "\n"
            << "gap:               " << best_gap << "\n";
  MANDIPASS_EXPECTS(best_gap > kMinGap);

  const std::filesystem::path dir = argv[1];
  std::filesystem::create_directories(dir);
  const std::filesystem::path path = dir / testing::kGoldenFileName;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  testing::save_golden(out, f);
  out.flush();
  if (!out) {
    std::cerr << "short write to " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << " (" << std::filesystem::file_size(path) << " bytes)\n";
  return 0;
}

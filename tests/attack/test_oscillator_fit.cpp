// Mimicry-fit convergence on synthetic victims with known oscillator
// parameters: the AR(2) least-squares identification (attack/oscillator_fit)
// must recover (omega_n, zeta+, zeta-) from clean free-decay traces of
// vibration::MandibleOscillator, degrade gracefully on garbage, and
// sharpen as observations pool.
#include "attack/oscillator_fit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "vibration/oscillator.h"
#include "vibration/population.h"
#include "vibration/profile.h"
#include "vibration/session.h"

namespace mandipass::attack {
namespace {

// A profile with a well-separated damping asymmetry and a mid-range
// resonance, integrated well above Nyquist concerns.
vibration::PersonProfile known_person() {
  vibration::PersonProfile p;
  p.mass_kg = 0.2;
  p.k1 = 2.0e4;
  p.k2 = 2.5e4;  // natural freq ~ 75.5 Hz
  p.c1 = 4.0;    // zeta+ ~ 0.0211
  p.c2 = 12.0;   // zeta- ~ 0.0632
  return p;
}

// Free decay: impulse force, then silence.
std::vector<double> free_decay(const vibration::PersonProfile& person, double fs,
                               std::size_t samples) {
  std::vector<double> force(samples, 0.0);
  force[0] = 50.0;
  const vibration::MandibleOscillator osc(person);
  return osc.integrate(force, fs).displacement;
}

TEST(OscillatorFit, RecoversNaturalFrequencyFromCleanDecay) {
  const auto person = known_person();
  const double fs = 2000.0;
  const auto trace = free_decay(person, fs, 800);
  const OscillatorEstimate est = fit_trace(trace, fs);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.natural_freq_hz, person.natural_freq_hz(),
              0.05 * person.natural_freq_hz());
}

TEST(OscillatorFit, RecoversDampingAsymmetryOrdering) {
  const auto person = known_person();
  const double fs = 2000.0;
  const auto trace = free_decay(person, fs, 800);
  const OscillatorEstimate est = fit_trace(trace, fs);
  ASSERT_TRUE(est.valid);
  // The sign-split fits must see through the phase switching: c2 > c1
  // by 3x, so the fitted negative-phase damping must dominate.
  EXPECT_GT(est.zeta_negative, est.zeta_positive);
  // And both land within a factor-2 band of truth — the switch-point
  // contamination bounds how sharp a per-phase fit can be.
  EXPECT_GT(est.zeta_positive, 0.5 * person.zeta_positive());
  EXPECT_LT(est.zeta_positive, 2.0 * person.zeta_positive());
  EXPECT_GT(est.zeta_negative, 0.5 * person.zeta_negative());
  EXPECT_LT(est.zeta_negative, 2.0 * person.zeta_negative());
}

TEST(OscillatorFit, RejectsDegenerateTraces) {
  const double fs = 1000.0;
  EXPECT_FALSE(fit_trace(std::vector<double>(200, 3.5), fs).valid);  // constant
  std::vector<double> ramp(200);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i);
  EXPECT_FALSE(fit_trace(ramp, fs).valid);  // real poles, no oscillation
  EXPECT_FALSE(fit_trace(std::vector<double>(4, 1.0), fs).valid);  // too short
  std::vector<double> poisoned = free_decay(known_person(), fs, 64);
  for (auto& v : poisoned) v = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(fit_trace(poisoned, fs).valid);  // nothing finite to fit
}

TEST(OscillatorFit, PoolingNoisyObservationsConvergesTowardTruth) {
  const auto person = known_person();
  const double fs = 2000.0;
  const double truth = person.natural_freq_hz();
  Rng rng(424242);

  // Each observation is the clean decay plus deterministic measurement
  // noise; pooling more of them must not move the estimate away from
  // truth (fixed seed makes this exact, no statistical flake).
  const auto clean = free_decay(person, fs, 600);
  std::vector<OscillatorEstimate> fits;
  double err_first = -1.0;
  for (std::size_t obs = 0; obs < 8; ++obs) {
    std::vector<double> noisy = clean;
    for (auto& v : noisy) v += 2e-6 * rng.normal();
    fits.push_back(fit_trace(noisy, fs));
    ASSERT_TRUE(fits.back().valid);
    if (obs == 0) {
      err_first = std::abs(fits.back().natural_freq_hz - truth);
    }
  }
  const OscillatorEstimate pooled = pool_estimates(fits);
  ASSERT_TRUE(pooled.valid);
  const double err_pooled = std::abs(pooled.natural_freq_hz - truth);
  EXPECT_LE(err_pooled, err_first + 1e-9);
  EXPECT_NEAR(pooled.natural_freq_hz, truth, 0.05 * truth);
}

TEST(OscillatorFit, PoolSkipsInvalidAndWeighsByCount) {
  OscillatorEstimate a{100.0, 0.05, 0.06, 100.0, true};
  OscillatorEstimate b{200.0, 0.15, 0.18, 300.0, true};
  OscillatorEstimate bad;  // invalid: must be ignored
  const std::vector<OscillatorEstimate> fits{a, bad, b};
  const OscillatorEstimate pooled = pool_estimates(fits);
  ASSERT_TRUE(pooled.valid);
  EXPECT_NEAR(pooled.natural_freq_hz, (100.0 * 100.0 + 200.0 * 300.0) / 400.0, 1e-9);
  EXPECT_NEAR(pooled.weight, 400.0, 1e-12);
  EXPECT_FALSE(pool_estimates(std::vector<OscillatorEstimate>{bad}).valid);
  EXPECT_FALSE(pool_estimates(std::vector<OscillatorEstimate>{}).valid);
}

TEST(OscillatorFit, FitObservationHandlesRealSessions) {
  // Against full synthetic sessions (forced response, sensor noise,
  // 350 Hz sampling) the fit cannot be exact — but it must be total:
  // never throw, and deliver at least one usable estimate across a
  // handful of observations, with the frequency inside the plausible
  // human band.
  Rng rng(99);
  vibration::PopulationGenerator pop(555);
  vibration::SessionRecorder recorder(pop.sample(), rng);
  std::size_t usable = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const auto rec = recorder.record(vibration::SessionConfig{});
    const OscillatorEstimate est = fit_observation(rec);
    if (est.valid) {
      ++usable;
      EXPECT_GT(est.natural_freq_hz, 5.0);
      EXPECT_LT(est.natural_freq_hz, 175.0);  // Nyquist of the 350 Hz stream
    }
  }
  EXPECT_GE(usable, 1u);
}

}  // namespace
}  // namespace mandipass::attack

// Attacker-model contracts: bit-exact determinism from the construction
// seed, correct use of the intel each threat model is granted, and the
// cancelable-biometric headline — replay is defeated by re-key.
#include "attack/mimicry_attacker.h"
#include "attack/replay_attacker.h"
#include "attack/zero_effort_attacker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "attack/scenario_matrix.h"
#include "auth/cosine.h"
#include "auth/gaussian_matrix.h"
#include "common/rng.h"
#include "core/extractor.h"
#include "core/preprocessor.h"
#include "core/signal_array.h"
#include "vibration/population.h"
#include "vibration/session.h"

namespace mandipass::attack {
namespace {

bool recordings_equal(const imu::RawRecording& a, const imu::RawRecording& b) {
  if (a.sample_rate_hz != b.sample_rate_hz || a.sample_count() != b.sample_count()) return false;
  for (std::size_t axis = 0; axis < imu::kAxisCount; ++axis) {
    if (a.axes[axis] != b.axes[axis]) return false;
  }
  return true;
}

bool forgeries_equal(const std::vector<Forgery>& a, const std::vector<Forgery>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].transformed != b[i].transformed) return false;
    if (a[i].matrix_seed != b[i].matrix_seed) return false;
    if (!recordings_equal(a[i].recording, b[i].recording)) return false;
  }
  return true;
}

class AttackerTest : public ::testing::Test {
 protected:
  AttackerTest() : rng_(4711), pop_(909) {
    victim_ = pop_.sample();
    vibration::SessionRecorder recorder(victim_, rng_);
    intel_.session = vibration::SessionConfig{};
    intel_.observed = recorder.record_many(intel_.session, 4);
    intel_.heard_f0_hz = victim_.f0_hz;
    intel_.heard_loudness = 0.5 * (victim_.force_pos_n + victim_.force_neg_n);
  }

  Rng rng_;
  vibration::PopulationGenerator pop_;
  vibration::PersonProfile victim_;
  VictimIntel intel_;
};

TEST_F(AttackerTest, SameSeedForgesBitIdenticalSequences) {
  {
    ZeroEffortAttacker a(42);
    ZeroEffortAttacker b(42);
    ZeroEffortAttacker c(43);
    EXPECT_TRUE(forgeries_equal(a.forge(intel_, 3), b.forge(intel_, 3)));
    ZeroEffortAttacker a2(42);
    EXPECT_FALSE(forgeries_equal(a2.forge(intel_, 3), c.forge(intel_, 3)));
  }
  {
    MimicryAttacker a(42);
    MimicryAttacker b(42);
    MimicryAttacker c(43);
    EXPECT_TRUE(forgeries_equal(a.forge(intel_, 3), b.forge(intel_, 3)));
    MimicryAttacker a2(42);
    EXPECT_FALSE(forgeries_equal(a2.forge(intel_, 3), c.forge(intel_, 3)));
  }
}

TEST_F(AttackerTest, ZeroEffortUsesFreshImpostorPerForgery) {
  ZeroEffortAttacker attacker(7);
  const auto forgeries = attacker.forge(intel_, 3);
  ASSERT_EQ(forgeries.size(), 3u);
  for (const auto& f : forgeries) {
    EXPECT_FALSE(f.channel_level());
    EXPECT_GT(f.recording.sample_count(), 0u);
  }
  // Different bodies, different recordings.
  EXPECT_FALSE(recordings_equal(forgeries[0].recording, forgeries[1].recording));
}

TEST_F(AttackerTest, MimicryFitsPlantFromObservations) {
  MimicryAttacker attacker(7, {.observations = 4, .fit_plant = true});
  (void)attacker.forge(intel_, 2);
  ASSERT_TRUE(attacker.last_fit().valid);
  EXPECT_GT(attacker.last_fit().natural_freq_hz, 5.0);
  EXPECT_LT(attacker.last_fit().natural_freq_hz, 175.0);

  // Voice-only impersonation must not fit (and reports a distinct name).
  MimicryAttacker voice_only(7, {.observations = 4, .fit_plant = false});
  (void)voice_only.forge(intel_, 2);
  EXPECT_FALSE(voice_only.last_fit().valid);
  EXPECT_EQ(attacker.name(), "mimicry");
  EXPECT_EQ(voice_only.name(), "impersonation");
}

TEST_F(AttackerTest, MimicryReactsToHeardPitch) {
  // The forged sessions must depend on what the attacker heard: shifting
  // the victim's apparent pitch shifts the forgery.
  MimicryAttacker a(7, {.fit_plant = false});
  MimicryAttacker b(7, {.fit_plant = false});
  VictimIntel detuned = intel_;
  detuned.heard_f0_hz = intel_.heard_f0_hz * 1.5;
  EXPECT_FALSE(forgeries_equal(a.forge(intel_, 2), b.forge(detuned, 2)));
}

TEST_F(AttackerTest, ReplayCyclesCapturedTransformsVerbatim) {
  intel_.captured_transforms = {{1.0F, 0.0F, 0.5F}, {0.0F, 2.0F, 0.25F}};
  intel_.capture_matrix_seed = 77;
  ReplayAttacker attacker;
  EXPECT_EQ(attacker.name(), "replay");
  EXPECT_FALSE(attacker.wants_rekeyed_target());
  const auto forgeries = attacker.forge(intel_, 5);
  ASSERT_EQ(forgeries.size(), 5u);
  for (std::size_t i = 0; i < forgeries.size(); ++i) {
    EXPECT_TRUE(forgeries[i].channel_level());
    EXPECT_EQ(forgeries[i].matrix_seed, 77u);
    EXPECT_EQ(forgeries[i].transformed, intel_.captured_transforms[i % 2]);
  }

  ReplayAttacker rekeyed({.expect_rekey = true});
  EXPECT_EQ(rekeyed.name(), "replay_rekeyed");
  EXPECT_TRUE(rekeyed.wants_rekeyed_target());
}

TEST_F(AttackerTest, ReplayFallsBackToSignalLevelWithoutWireCapture) {
  ReplayAttacker attacker;
  const auto forgeries = attacker.forge(intel_, 3);
  ASSERT_EQ(forgeries.size(), 3u);
  for (std::size_t i = 0; i < forgeries.size(); ++i) {
    EXPECT_FALSE(forgeries[i].channel_level());
    EXPECT_TRUE(recordings_equal(forgeries[i].recording, intel_.observed[i % 4]));
  }
}

TEST_F(AttackerTest, ReplayIsDefeatedByRekey) {
  // End-to-end over the real pipeline: capture the victim's transformed
  // prints under the enrollment key, then compare replaying them against
  // (a) the original sealed template and (b) the template re-sealed
  // under a rotated seed. The paper's cancelable-biometric claim is that
  // (a) matches at genuine-level distance and (b) is decorrelated.
  core::ExtractorConfig cfg;
  cfg.embedding_dim = 32;
  cfg.channels = {4, 6, 8};
  core::BiometricExtractor extractor(cfg);
  const core::Preprocessor prep;

  Rng rng(31337);
  vibration::SessionRecorder recorder(victim_, rng);
  std::vector<std::vector<float>> prints;
  for (const auto& rec : recorder.record_many(vibration::SessionConfig{}, 4)) {
    const auto processed = prep.try_process(rec);
    ASSERT_TRUE(processed.ok());
    prints.push_back(extractor.extract(core::build_gradient_array(processed.value())));
  }

  const auth::GaussianMatrix old_key(1001, cfg.embedding_dim);
  const auth::GaussianMatrix new_key(2002, cfg.embedding_dim);
  const std::vector<float> sealed_old = old_key.transform(prints[0]);
  const std::vector<float> sealed_new = new_key.transform(prints[0]);

  intel_.captured_transforms.clear();
  for (std::size_t i = 1; i < prints.size(); ++i) {
    intel_.captured_transforms.push_back(old_key.transform(prints[i]));
  }
  intel_.capture_matrix_seed = old_key.seed();

  ReplayAttacker attacker;
  double worst_prekey = 0.0;
  double best_postkey = 2.0;
  for (const Forgery& f : attacker.forge(intel_, 3)) {
    worst_prekey = std::max(
        worst_prekey, score_forgery(f, prep, extractor, sealed_old, old_key).distance);
    best_postkey = std::min(
        best_postkey, score_forgery(f, prep, extractor, sealed_new, new_key).distance);
  }
  // Pre-rotation: the captured material is genuine-level close.
  EXPECT_LT(worst_prekey, 0.3);
  // Post-rotation: decorrelated under the new key — nowhere near any
  // sane operating threshold (the paper's is 0.5485).
  EXPECT_GT(best_postkey, 0.7);
}

}  // namespace
}  // namespace mandipass::attack

// ScenarioMatrix contracts: totality (every cell populated, no silent
// skips), bit-exact determinism across runs, honest accounting of
// capture-rejected probes, and the replay/re-key verdict end-to-end.
#include "attack/scenario_matrix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "attack/mimicry_attacker.h"
#include "attack/replay_attacker.h"
#include "attack/scenario.h"
#include "attack/zero_effort_attacker.h"
#include "core/extractor.h"

namespace mandipass::attack {
namespace {

core::BiometricExtractor make_extractor() {
  core::ExtractorConfig cfg;
  cfg.embedding_dim = 32;
  cfg.channels = {4, 6, 8};
  return core::BiometricExtractor(cfg);
}

MatrixConfig small_config() {
  MatrixConfig cfg;
  cfg.victims = 2;
  cfg.enroll_sessions = 2;
  cfg.observed_sessions = 3;
  cfg.genuine_probes = 2;
  cfg.attack_probes = 2;
  return cfg;
}

struct AttackerSet {
  ZeroEffortAttacker zero{11};
  MimicryAttacker mimicry{12, {.observations = 2}};
  ReplayAttacker replay{};
  ReplayAttacker replay_rekeyed{{.expect_rekey = true}};
  std::vector<Attacker*> all{&zero, &mimicry, &replay, &replay_rekeyed};
};

TEST(ScenarioMatrix, EveryCellPopulatedNoSilentSkips) {
  auto extractor = make_extractor();
  ScenarioMatrix matrix(small_config(), extractor);
  AttackerSet attackers;
  const auto scenarios = default_scenarios();
  ASSERT_GE(scenarios.size(), 4u);

  const MatrixResult result = matrix.run(attackers.all, scenarios);

  EXPECT_GT(result.threshold, 0.0);
  EXPECT_GE(result.calibration_eer, 0.0);
  EXPECT_LE(result.calibration_eer, 1.0);

  ASSERT_EQ(result.genuine.size(), scenarios.size());
  ASSERT_EQ(result.cells.size(), attackers.all.size() * scenarios.size());
  const auto& cfg = matrix.config();
  for (const auto& scenario : scenarios) {
    const GenuineRow* row = result.genuine_row(scenario.name);
    ASSERT_NE(row, nullptr) << scenario.name;
    EXPECT_EQ(row->attempts, cfg.victims * cfg.genuine_probes);
    EXPECT_EQ(row->distances.size(), row->attempts);
    EXPECT_EQ(row->accepted + (row->attempts - row->accepted), row->attempts);
    for (Attacker* attacker : attackers.all) {
      const CellResult* cell = result.cell(attacker->name(), scenario.name);
      ASSERT_NE(cell, nullptr) << attacker->name() << " x " << scenario.name;
      EXPECT_EQ(cell->attempts, cfg.victims * cfg.attack_probes);
      EXPECT_EQ(cell->distances.size(), cell->attempts);
      EXPECT_LE(cell->accepted, cell->attempts);
      EXPECT_LE(cell->capture_rejected, cell->attempts);
      EXPECT_GE(cell->vsr, 0.0);
      EXPECT_LE(cell->vsr, 1.0);
      EXPECT_GE(cell->eer, 0.0);
      EXPECT_LE(cell->eer, 1.0);
      EXPECT_EQ(cell->rekeyed, attacker->wants_rekeyed_target());
    }
  }
  EXPECT_EQ(result.cell("no_such_attacker", "clean"), nullptr);
  EXPECT_EQ(result.genuine_row("no_such_scenario"), nullptr);
}

TEST(ScenarioMatrix, BitIdenticalAcrossRuns) {
  const auto scenarios = default_scenarios();
  auto run_once = [&] {
    auto extractor = make_extractor();
    ScenarioMatrix matrix(small_config(), extractor);
    AttackerSet attackers;
    return matrix.run(attackers.all, scenarios);
  };
  const MatrixResult a = run_once();
  const MatrixResult b = run_once();
  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.threshold, b.threshold);
  EXPECT_EQ(a.calibration_eer, b.calibration_eer);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].attacker, b.cells[i].attacker);
    EXPECT_EQ(a.cells[i].scenario, b.cells[i].scenario);
    EXPECT_EQ(a.cells[i].accepted, b.cells[i].accepted);
    EXPECT_EQ(a.cells[i].capture_rejected, b.cells[i].capture_rejected);
    EXPECT_EQ(a.cells[i].distances, b.cells[i].distances);  // bit-exact
  }
  for (std::size_t i = 0; i < a.genuine.size(); ++i) {
    EXPECT_EQ(a.genuine[i].distances, b.genuine[i].distances);
  }
}

TEST(ScenarioMatrix, ReplayDefeatedByRekeyInsideTheMatrix) {
  auto extractor = make_extractor();
  ScenarioMatrix matrix(small_config(), extractor);
  AttackerSet attackers;
  const auto scenarios = default_scenarios();
  const MatrixResult result = matrix.run(attackers.all, scenarios);

  const CellResult* prekey = result.cell("replay", "clean");
  const CellResult* postkey = result.cell("replay_rekeyed", "clean");
  ASSERT_NE(prekey, nullptr);
  ASSERT_NE(postkey, nullptr);
  // Captured transforms under the live key ARE genuine-level probes: the
  // worst replayed distance must stay strictly below the best re-keyed
  // one, with a wide decorrelation gap (threshold-free — the claim holds
  // however sharp the extractor is).
  ASSERT_FALSE(prekey->distances.empty());
  ASSERT_FALSE(postkey->distances.empty());
  const double worst_prekey =
      *std::max_element(prekey->distances.begin(), prekey->distances.end());
  const double best_postkey =
      *std::min_element(postkey->distances.begin(), postkey->distances.end());
  EXPECT_LT(worst_prekey, 0.5);
  EXPECT_GT(best_postkey, 0.5);
  EXPECT_GT(best_postkey - worst_prekey, 0.25);
  // And at the operating threshold the rotation shuts the attack out
  // entirely.
  EXPECT_EQ(postkey->accepted, 0u);
  EXPECT_EQ(postkey->vsr, 0.0);
  // The replayed material survives at least as well as the genuine row's
  // acceptance would predict (it is drawn from the same distribution).
  EXPECT_GE(prekey->vsr + 0.51, result.genuine_row("clean")->vsr);
}

TEST(ScenarioMatrix, CaptureRejectsAreScoredNotDropped) {
  auto extractor = make_extractor();
  MatrixConfig cfg = small_config();
  ScenarioMatrix matrix(cfg, extractor);
  AttackerSet attackers;

  // A brutally saturating scenario: most captures must be rejected by
  // the preprocessor, yet attempts stay total and rejects score the
  // maximum distance.
  ScenarioSpec brutal;
  brutal.name = "brutal_saturation";
  brutal.faults.push_back({imu::FaultKind::Saturation, 1.0, 200.0, 0});
  const std::vector<ScenarioSpec> scenarios{brutal};

  const MatrixResult result = matrix.run(attackers.all, scenarios);
  const GenuineRow* row = result.genuine_row("brutal_saturation");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->attempts, cfg.victims * cfg.genuine_probes);
  EXPECT_GT(row->capture_rejected, 0u);
  std::size_t max_distance_probes = 0;
  for (double d : row->distances) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, kRejectDistance);
    if (d == kRejectDistance) ++max_distance_probes;
  }
  EXPECT_GE(max_distance_probes, row->capture_rejected);

  // Signal-level attackers ride the same channel and reject too; the
  // cell still reports full attempts.
  const CellResult* zero = result.cell("zero_effort", "brutal_saturation");
  ASSERT_NE(zero, nullptr);
  EXPECT_EQ(zero->attempts, cfg.victims * cfg.attack_probes);
  EXPECT_GT(zero->capture_rejected, 0u);
}

}  // namespace
}  // namespace mandipass::attack

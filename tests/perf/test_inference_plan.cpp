// Fused-vs-reference equivalence suite for the compiled inference plan
// (DESIGN.md §13). The contract under test:
//
//   * extract/extract_batch (compiled: BN folded into conv, ReLU/Sigmoid
//     fused as GEMM epilogues, packed register-blocked kernel) match the
//     layer-by-layer reference embed() to ≤ 1e-5 max-abs per embedding
//     element, for batch sizes 1/7/128, thread counts 1/2/8, with and
//     without an attached head, on a *trained* model (nontrivial BN
//     running statistics, so the folding math is genuinely exercised);
//   * the compiled output is bit-identical across thread counts and
//     between the single-sample and batched entry points;
//   * accept/reject decisions through the cancelable-transform + Verifier
//     pipeline are identical between the two paths;
//   * the plan is invalidated (recompiled) after training and load().
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "auth/gaussian_matrix.h"
#include "auth/verifier.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/extractor.h"
#include "core/trainer.h"

namespace mandipass::core {
namespace {

constexpr float kEmbedTol = 1e-5f;  // the documented fused-vs-reference bound

GradientArray random_gradient_array(Rng& rng, std::size_t half) {
  GradientArray g;
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    g.positive[a].resize(half);
    g.negative[a].resize(half);
    for (std::size_t i = 0; i < half; ++i) {
      g.positive[a][i] = rng.uniform(0.0, 0.5);
      g.negative[a][i] = rng.uniform(-0.5, 0.0);
    }
  }
  return g;
}

std::vector<GradientArray> random_batch(std::size_t count, std::size_t half,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<GradientArray> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(random_gradient_array(rng, half));
  }
  return out;
}

/// The layer-by-layer reference: pack + eval-mode embed(), exactly the
/// pre-plan extract_batch pipeline.
std::vector<std::vector<float>> reference_extract_batch(
    BiometricExtractor& ex, const std::vector<GradientArray>& arrays) {
  std::vector<std::vector<float>> out;
  out.reserve(arrays.size());
  constexpr std::size_t kChunk = 128;
  for (std::size_t start = 0; start < arrays.size(); start += kChunk) {
    const std::size_t bs = std::min(kChunk, arrays.size() - start);
    const BranchTensors input = pack_branches(
        std::span<const GradientArray>(arrays).subspan(start, bs), ex.config().axes);
    const nn::Tensor e = ex.embed(input, /*train=*/false);
    for (std::size_t b = 0; b < bs; ++b) {
      std::vector<float> row(e.dim(1));
      for (std::size_t j = 0; j < row.size(); ++j) {
        row[j] = e.at2(b, j);
      }
      out.push_back(std::move(row));
    }
  }
  return out;
}

float max_abs_delta(const std::vector<std::vector<float>>& a,
                    const std::vector<std::vector<float>>& b) {
  EXPECT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      worst = std::max(worst, std::abs(a[i][j] - b[i][j]));
    }
  }
  return worst;
}

bool bitwise_equal(const std::vector<std::vector<float>>& a,
                   const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size() ||
        std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

ExtractorConfig small_config() {
  ExtractorConfig cfg;
  cfg.half_length = 30;
  cfg.embedding_dim = 32;
  cfg.channels = {4, 6, 8};
  return cfg;
}

/// Trains briefly so BN running statistics, gamma/beta and the conv
/// weights all move off their init values — a fresh model would fold
/// near-identity BN and prove very little.
void train_briefly(BiometricExtractor& ex, std::uint64_t seed) {
  LabeledGradientSet data;
  Rng rng(seed);
  for (std::uint32_t person = 0; person < 4; ++person) {
    for (std::size_t s = 0; s < 12; ++s) {
      data.arrays.push_back(random_gradient_array(rng, ex.config().half_length));
      data.labels.push_back(person);
    }
  }
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  ExtractorTrainer trainer(ex, tc);
  trainer.train(data);
}

class InferencePlanEquivalence : public ::testing::Test {
 protected:
  void TearDown() override { common::ThreadPool::set_global_threads(1); }
};

TEST_F(InferencePlanEquivalence, MatchesReferenceAcrossBatchSizesAndThreads) {
  BiometricExtractor ex(small_config());
  train_briefly(ex, 21);
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{7}, std::size_t{128}}) {
    const auto batch = random_batch(batch_size, ex.config().half_length, 100 + batch_size);
    common::ThreadPool::set_global_threads(1);
    const auto reference = reference_extract_batch(ex, batch);
    const auto compiled_serial = ex.extract_batch(batch);
    EXPECT_LE(max_abs_delta(reference, compiled_serial), kEmbedTol)
        << "batch " << batch_size << " (serial)";
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      common::ThreadPool::set_global_threads(threads);
      EXPECT_TRUE(bitwise_equal(compiled_serial, ex.extract_batch(batch)))
          << "batch " << batch_size << ", " << threads << " threads";
    }
  }
}

TEST_F(InferencePlanEquivalence, SingleSampleMatchesBatchedBitExactly) {
  BiometricExtractor ex(small_config());
  train_briefly(ex, 22);
  const auto batch = random_batch(7, ex.config().half_length, 77);
  common::ThreadPool::set_global_threads(8);
  const auto batched = ex.extract_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto single = ex.extract(batch[i]);
    ASSERT_EQ(single.size(), batched[i].size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(single[j], batched[i][j]) << "sample " << i << " dim " << j;
    }
  }
}

TEST_F(InferencePlanEquivalence, HeadlessModelMatchesReference) {
  // The plan covers branches + trunk only; a never-trained, headless
  // model (identity-ish BN) must still fold correctly.
  BiometricExtractor ex(small_config());
  ASSERT_FALSE(ex.has_head());
  const auto batch = random_batch(7, ex.config().half_length, 31);
  const auto reference = reference_extract_batch(ex, batch);
  EXPECT_LE(max_abs_delta(reference, ex.extract_batch(batch)), kEmbedTol);
}

TEST_F(InferencePlanEquivalence, AttachingAHeadDoesNotPerturbEmbeddings) {
  // The head projects *after* the MandiblePrint; attaching one must not
  // change what extract produces or disturb the compiled plan.
  BiometricExtractor ex(small_config());
  const auto batch = random_batch(5, ex.config().half_length, 41);
  const auto before = ex.extract_batch(batch);
  ex.attach_head(4);
  EXPECT_TRUE(bitwise_equal(before, ex.extract_batch(batch)));
}

TEST_F(InferencePlanEquivalence, DecisionsMatchReferencePath) {
  BiometricExtractor ex(small_config());
  train_briefly(ex, 24);
  const auto genuine = random_batch(8, ex.config().half_length, 51);
  const auto probes = random_batch(8, ex.config().half_length, 52);

  const auto ref_templates = reference_extract_batch(ex, genuine);
  const auto ref_probes = reference_extract_batch(ex, probes);
  const auto fused_templates = ex.extract_batch(genuine);
  const auto fused_probes = ex.extract_batch(probes);

  const auth::GaussianMatrix g(0xA11CE, ex.config().embedding_dim);
  // Sweep thresholds across the whole distance range: the fused path must
  // reproduce the reference decision at every operating point (bar a
  // knife-edge tie, which the ≤1e-5 embedding bound makes measure-zero
  // for these random probes).
  for (const double threshold : {0.05, 0.15, 0.30, 0.50, 0.70}) {
    const auth::Verifier v(threshold);
    for (std::size_t i = 0; i < ref_templates.size(); ++i) {
      for (std::size_t j = 0; j < ref_probes.size(); ++j) {
        const auto ref_t = g.transform(ref_templates[i]);
        const auto ref_p = g.transform(ref_probes[j]);
        const auto fus_t = g.transform(fused_templates[i]);
        const auto fus_p = g.transform(fused_probes[j]);
        const auto ref_d = v.verify(ref_p, ref_t);
        const auto fus_d = v.verify(fus_p, fus_t);
        EXPECT_EQ(ref_d.accepted, fus_d.accepted)
            << "threshold " << threshold << " pair (" << i << "," << j << "), distances "
            << ref_d.distance << " vs " << fus_d.distance;
        EXPECT_NEAR(ref_d.distance, fus_d.distance, 1e-4);
      }
    }
  }
}

TEST_F(InferencePlanEquivalence, PlanIsInvalidatedByTraining) {
  BiometricExtractor ex(small_config());
  const auto batch = random_batch(3, ex.config().half_length, 61);
  const auto before = ex.extract_batch(batch);  // compiles the initial plan
  train_briefly(ex, 25);
  const auto after = ex.extract_batch(batch);
  EXPECT_FALSE(bitwise_equal(before, after)) << "plan survived training";
  EXPECT_LE(max_abs_delta(reference_extract_batch(ex, batch), after), kEmbedTol);
}

TEST_F(InferencePlanEquivalence, PlanIsInvalidatedByLoad) {
  BiometricExtractor trained(small_config());
  train_briefly(trained, 26);
  BiometricExtractor loaded(small_config());
  const auto batch = random_batch(3, trained.config().half_length, 71);
  (void)loaded.extract_batch(batch);  // compile a plan for the *old* weights
  std::stringstream ss;
  trained.save(ss);
  loaded.load(ss);
  EXPECT_TRUE(bitwise_equal(trained.extract_batch(batch), loaded.extract_batch(batch)));
}

}  // namespace
}  // namespace mandipass::core

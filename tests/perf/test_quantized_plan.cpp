// Cross-tier equivalence suite for the int8 compiled inference plan
// (DESIGN.md §18). The contract under test:
//
//   * every SIMD kernel tier compiled into this binary (VNNI, AVX2,
//     NEON) produces accumulators bit-identical to the generic int32
//     reference tier, at shapes that stress the padding paths: cols not
//     a multiple of the 4-tap group, rows not a multiple of the
//     16-channel block;
//   * QuantizedExtractor::extract/extract_batch are bit-identical to
//     each other and across batch sizes 1/7/128 and thread counts
//     1/2/8 (per-vector activation quantization makes each sample
//     independent of the batch split);
//   * the plan's embeddings stay within the documented max-abs drift
//     bound of the float-activation scalar reference path;
//   * a zero-scale weight row and an all-zero input vector both
//     short-circuit to y = bias exactly;
//   * worker arenas stop growing after one warm-up pass;
//   * requantize() invalidates the cached plan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/extractor.h"
#include "core/quantized_extractor.h"
#include "core/trainer.h"
#include "nn/inference_plan.h"
#include "nn/quantize.h"
#include "nn/tensor.h"

namespace mandipass::core {
namespace {

// The documented plan-vs-scalar-reference bound: activation
// quantization is 7-bit, so post-sigmoid embeddings drift well under
// this (bench_quantized measures the actual value each run).
constexpr float kDriftTol = 5e-2f;

GradientArray random_gradient_array(Rng& rng, std::size_t half) {
  GradientArray g;
  for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
    g.positive[a].resize(half);
    g.negative[a].resize(half);
    for (std::size_t i = 0; i < half; ++i) {
      g.positive[a][i] = rng.uniform(0.0, 0.5);
      g.negative[a][i] = rng.uniform(-0.5, 0.0);
    }
  }
  return g;
}

std::vector<GradientArray> random_batch(std::size_t count, std::size_t half,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<GradientArray> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(random_gradient_array(rng, half));
  }
  return out;
}

bool bitwise_equal(const std::vector<std::vector<float>>& a,
                   const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size() ||
        std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

ExtractorConfig small_config() {
  ExtractorConfig cfg;
  cfg.half_length = 30;
  cfg.embedding_dim = 32;
  cfg.channels = {4, 6, 8};
  return cfg;
}

void train_briefly(BiometricExtractor& ex, std::uint64_t seed) {
  LabeledGradientSet data;
  Rng rng(seed);
  for (std::uint32_t person = 0; person < 4; ++person) {
    for (std::size_t s = 0; s < 12; ++s) {
      data.arrays.push_back(random_gradient_array(rng, ex.config().half_length));
      data.labels.push_back(person);
    }
  }
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  ExtractorTrainer trainer(ex, tc);
  trainer.train(data);
}

/// A packed gemm over a random weight matrix plus a matching random
/// input batch, for driving run()/run_tier() directly.
struct GemmCase {
  nn::PackedQuantizedGemm gemm;
  std::vector<float> x;  ///< x_count vectors of `cols` floats each
  std::vector<float> bias;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t x_count = 0;
};

GemmCase make_case(std::size_t rows, std::size_t cols, std::size_t x_count,
                   std::uint64_t seed) {
  Rng rng(seed);
  GemmCase c;
  c.rows = rows;
  c.cols = cols;
  c.x_count = x_count;
  nn::Tensor w({rows, cols});
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  c.bias.resize(rows);
  for (auto& b : c.bias) {
    b = static_cast<float>(rng.normal(0.0, 0.2));
  }
  c.gemm.pack_rows(nn::quantize_rows(w), c.bias.data());
  c.x.resize(x_count * cols);
  for (auto& v : c.x) {
    v = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return c;
}

class QuantizedPlanEquivalence : public ::testing::Test {
 protected:
  void TearDown() override { common::ThreadPool::set_global_threads(1); }
};

TEST_F(QuantizedPlanEquivalence, AllTiersMatchGenericBitExactlyAtOddShapes) {
  // Rows off the 16-channel block and cols off the 4-tap group / SIMD
  // width exercise every zero-padded tail path.
  const std::size_t row_shapes[] = {1, 7, 15, 16, 17, 33, 64};
  const std::size_t col_shapes[] = {3, 5, 17, 33, 100, 257};
  const nn::Epilogue epilogues[] = {nn::Epilogue::None, nn::Epilogue::Relu,
                                    nn::Epilogue::Sigmoid};
  const auto tiers = nn::quantized_kernel_tiers();
  ASSERT_FALSE(tiers.empty());
  nn::ScratchArena arena;
  arena.assert_owner();
  std::uint64_t seed = 1;
  for (const std::size_t rows : row_shapes) {
    for (const std::size_t cols : col_shapes) {
      // 5 input vectors: one full 4-wide tile plus a remainder column.
      const GemmCase c = make_case(rows, cols, 5, seed++);
      std::vector<float> ref(rows * c.x_count);
      arena.reset();
      ASSERT_TRUE(c.gemm.run_tier("generic", c.x.data(), c.x_count, cols, ref.data(),
                                  c.x_count, nn::Epilogue::None, arena));
      for (const nn::Epilogue ep : epilogues) {
        std::vector<float> via_run(rows * c.x_count);
        arena.reset();
        c.gemm.run(c.x.data(), c.x_count, cols, via_run.data(), c.x_count, ep, arena);
        for (const char* tier : tiers) {
          std::vector<float> got(rows * c.x_count, -42.0f);
          arena.reset();
          ASSERT_TRUE(c.gemm.run_tier(tier, c.x.data(), c.x_count, cols, got.data(),
                                      c.x_count, ep, arena))
              << tier;
          EXPECT_EQ(std::memcmp(got.data(), via_run.data(),
                                got.size() * sizeof(float)),
                    0)
              << tier << " vs dispatch at " << rows << "x" << cols << " epilogue "
              << static_cast<int>(ep);
        }
        if (ep == nn::Epilogue::None) {
          EXPECT_EQ(std::memcmp(via_run.data(), ref.data(), ref.size() * sizeof(float)),
                    0)
              << "dispatch vs generic at " << rows << "x" << cols;
        }
      }
    }
  }
}

TEST_F(QuantizedPlanEquivalence, UnknownTierIsRejectedWithoutTouchingOutput) {
  const GemmCase c = make_case(16, 36, 2, 99);
  nn::ScratchArena arena;
  arena.assert_owner();
  std::vector<float> y(c.rows * c.x_count, -7.0f);
  EXPECT_FALSE(c.gemm.run_tier("sse42", c.x.data(), c.x_count, c.cols, y.data(),
                               c.x_count, nn::Epilogue::None, arena));
  for (float v : y) {
    EXPECT_EQ(v, -7.0f);
  }
}

TEST_F(QuantizedPlanEquivalence, ActiveTierIsListed) {
  const char* active = nn::active_quantized_kernel();
  ASSERT_NE(active, nullptr);
  bool listed = false;
  for (const char* tier : nn::quantized_kernel_tiers()) {
    listed = listed || std::strcmp(tier, active) == 0;
  }
  EXPECT_TRUE(listed) << active;
#if defined(MANDIPASS_FORCE_GENERIC_KERNELS)
  EXPECT_STREQ(active, "generic");
  EXPECT_EQ(nn::quantized_kernel_tiers().size(), 1u);
#endif
}

TEST_F(QuantizedPlanEquivalence, ZeroScaleRowAndZeroInputPassBiasThrough) {
  // Row 1 of the weight matrix is all zeros -> scale 0 -> y[1] must be
  // exactly bias[1] whatever the input; an all-zero input vector has
  // zero quantization range -> every row must produce exactly bias[r].
  const std::size_t rows = 5, cols = 19;
  nn::Tensor w({rows, cols});
  Rng rng(7);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  for (std::size_t k = 0; k < cols; ++k) {
    w.at2(1, k) = 0.0f;
  }
  std::vector<float> bias = {0.5f, -3.25f, 1.0f, 0.125f, -0.75f};
  nn::PackedQuantizedGemm gemm;
  gemm.pack_rows(nn::quantize_rows(w), bias.data());

  std::vector<float> x(2 * cols, 0.0f);
  for (std::size_t k = 0; k < cols; ++k) {
    x[cols + k] = static_cast<float>(rng.normal(0.0, 100.0));  // huge inputs
  }
  nn::ScratchArena arena;
  arena.assert_owner();
  std::vector<float> y(rows * 2);
  gemm.run(x.data(), 2, cols, y.data(), 2, nn::Epilogue::None, arena);
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(y[r * 2 + 0], bias[r]) << "zero input, row " << r;
  }
  EXPECT_EQ(y[1 * 2 + 1], bias[1]) << "zero-scale row, huge input";
}

TEST_F(QuantizedPlanEquivalence, ExtractorBitIdenticalAcrossBatchAndThreads) {
  BiometricExtractor ex(small_config());
  train_briefly(ex, 31);
  const QuantizedExtractor qex(ex);
  for (const std::size_t batch_size :
       {std::size_t{1}, std::size_t{7}, std::size_t{128}}) {
    const auto batch = random_batch(batch_size, ex.config().half_length, 200 + batch_size);
    common::ThreadPool::set_global_threads(1);
    const auto serial = qex.extract_batch(batch);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      common::ThreadPool::set_global_threads(threads);
      EXPECT_TRUE(bitwise_equal(serial, qex.extract_batch(batch)))
          << "batch " << batch_size << ", " << threads << " threads";
    }
  }
}

TEST_F(QuantizedPlanEquivalence, SingleSampleMatchesBatchedBitExactly) {
  BiometricExtractor ex(small_config());
  train_briefly(ex, 32);
  const QuantizedExtractor qex(ex);
  const auto batch = random_batch(7, ex.config().half_length, 210);
  common::ThreadPool::set_global_threads(8);
  const auto batched = qex.extract_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto single = qex.extract(batch[i]);
    ASSERT_EQ(single.size(), batched[i].size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(single[j], batched[i][j]) << "sample " << i << " dim " << j;
    }
  }
}

TEST_F(QuantizedPlanEquivalence, PlanStaysWithinDriftBoundOfScalarReference) {
  BiometricExtractor ex(small_config());
  train_briefly(ex, 33);
  const QuantizedExtractor qex(ex);
  Rng rng(220);
  for (int t = 0; t < 8; ++t) {
    const auto g = random_gradient_array(rng, ex.config().half_length);
    const auto planned = qex.extract(g);
    const auto scalar = qex.extract_scalar(g);
    ASSERT_EQ(planned.size(), scalar.size());
    for (std::size_t j = 0; j < planned.size(); ++j) {
      EXPECT_NEAR(planned[j], scalar[j], kDriftTol) << "sample " << t << " dim " << j;
    }
  }
}

TEST_F(QuantizedPlanEquivalence, SteadyStateDoesNotGrowArenas) {
  BiometricExtractor ex(small_config());
  train_briefly(ex, 34);
  const QuantizedExtractor qex(ex);
  const auto batch = random_batch(32, ex.config().half_length, 230);
  common::ThreadPool::set_global_threads(1);
  (void)qex.extract(batch[0]);
  (void)qex.extract_batch(batch);  // warm-up: arena blocks get carved
  const std::size_t warm = nn::thread_scratch_arena().capacity_bytes();
  EXPECT_GT(warm, 0u);
  for (int round = 0; round < 5; ++round) {
    (void)qex.extract_batch(batch);
    (void)qex.extract(batch[static_cast<std::size_t>(round)]);
    EXPECT_EQ(nn::thread_scratch_arena().capacity_bytes(), warm) << "round " << round;
  }
}

TEST_F(QuantizedPlanEquivalence, RequantizeInvalidatesTheCachedPlan) {
  BiometricExtractor ex(small_config());
  train_briefly(ex, 35);
  QuantizedExtractor qex(ex);
  const auto batch = random_batch(3, ex.config().half_length, 240);
  const auto before = qex.extract_batch(batch);  // compiles the initial plan
  train_briefly(ex, 36);
  qex.requantize(ex);
  const auto after = qex.extract_batch(batch);
  EXPECT_FALSE(bitwise_equal(before, after)) << "plan survived requantize";
  // A fresh snapshot of the same source must agree bit-for-bit.
  const QuantizedExtractor fresh(ex);
  EXPECT_TRUE(bitwise_equal(after, fresh.extract_batch(batch)));
}

}  // namespace
}  // namespace mandipass::core

// ScratchArena semantics (DESIGN.md §13): bump allocation with pointer
// stability until reset, reset-not-free reuse, and — the property the
// compiled extractor's steady state depends on — zero capacity growth
// once the allocation pattern has been seen. The arena is also a
// thread-confined capability (DESIGN.md §14): the first toucher owns it
// and any other thread's access is a precondition failure.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/extractor.h"
#include "nn/inference_plan.h"

namespace mandipass::nn {
namespace {

TEST(ScratchArena, AllocationsAreDisjointAndWritable) {
  ScratchArena arena;
  float* a = arena.alloc(100);
  float* b = arena.alloc(50);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GE(b, a + 100) << "allocations overlap";
  for (std::size_t i = 0; i < 100; ++i) {
    a[i] = static_cast<float>(i);
  }
  for (std::size_t i = 0; i < 50; ++i) {
    b[i] = -1.0f;
  }
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], static_cast<float>(i));  // b writes never bled into a
  }
}

TEST(ScratchArena, ResetReusesTheSameStorage) {
  ScratchArena arena;
  float* first = arena.alloc(256);
  arena.reset();
  EXPECT_EQ(arena.alloc(256), first) << "reset must rewind, not reallocate";
}

TEST(ScratchArena, NoGrowthAfterWarmup) {
  ScratchArena arena;
  const auto pattern = [&arena] {
    arena.reset();
    (void)arena.alloc(180);
    (void)arena.alloc(4320);
    (void)arena.alloc(1440);
    (void)arena.alloc(6912);
    (void)arena.alloc(768);
  };
  pattern();
  const std::size_t warm_capacity = arena.capacity_bytes();
  const std::size_t warm_blocks = arena.block_count();
  EXPECT_GT(warm_capacity, 0u);
  for (int i = 0; i < 200; ++i) {
    pattern();
  }
  EXPECT_EQ(arena.capacity_bytes(), warm_capacity);
  EXPECT_EQ(arena.block_count(), warm_blocks);
}

TEST(ScratchArena, OversizedRequestGetsItsOwnBlock) {
  ScratchArena arena;
  const std::size_t big = (std::size_t{1} << 20) + 7;  // > the minimum block
  float* p = arena.alloc(big);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0f;
  p[big - 1] = 2.0f;
  EXPECT_GE(arena.capacity_bytes(), big * sizeof(float));
}

TEST(ScratchArena, FirstToucherOwnsTheArena) {
  ScratchArena arena;
  arena.assert_owner();  // main thread adopts the arena
  (void)arena.alloc(16);

  bool threw = false;
  std::thread intruder([&] {
    try {
      (void)arena.alloc(16);
    } catch (const PreconditionError&) {
      threw = true;
    }
  });
  intruder.join();
  EXPECT_TRUE(threw) << "cross-thread arena use must be a precondition failure";

  // The owner is unaffected by the rejected access.
  EXPECT_NE(arena.alloc(16), nullptr);
}

TEST(ScratchArena, UnownedArenaIsAdoptableByAnyThread) {
  ScratchArena arena;
  bool ok = false;
  std::thread worker([&] {
    arena.assert_owner();
    float* p = arena.alloc(8);
    ok = p != nullptr;
    arena.reset();
  });
  worker.join();
  EXPECT_TRUE(ok) << "a fresh arena binds to whichever thread touches it first";
}

TEST(ScratchArena, ZeroCountIsValid) {
  ScratchArena arena;
  EXPECT_NE(arena.alloc(0), nullptr);
}

// The end-to-end property: after one extract_batch has warmed every
// worker arena, further batches of the same shape allocate nothing new.
TEST(ScratchArena, CompiledExtractorSteadyStateDoesNotGrowArenas) {
  core::ExtractorConfig cfg;
  cfg.half_length = 30;
  cfg.embedding_dim = 32;
  cfg.channels = {4, 6, 8};
  core::BiometricExtractor ex(cfg);

  mandipass::Rng rng(5);
  std::vector<core::GradientArray> batch;
  for (std::size_t s = 0; s < 32; ++s) {
    core::GradientArray g;
    for (std::size_t a = 0; a < imu::kAxisCount; ++a) {
      g.positive[a].resize(cfg.half_length);
      g.negative[a].resize(cfg.half_length);
      for (std::size_t i = 0; i < cfg.half_length; ++i) {
        g.positive[a][i] = rng.uniform();
        g.negative[a][i] = -rng.uniform();
      }
    }
    batch.push_back(std::move(g));
  }

  common::ThreadPool::set_global_threads(1);
  (void)ex.extract_batch(batch);  // warm-up: arena blocks get carved
  const std::size_t warm = thread_scratch_arena().capacity_bytes();
  EXPECT_GT(warm, 0u);
  for (int round = 0; round < 5; ++round) {
    (void)ex.extract_batch(batch);
    EXPECT_EQ(thread_scratch_arena().capacity_bytes(), warm) << "round " << round;
  }
}

}  // namespace
}  // namespace mandipass::nn

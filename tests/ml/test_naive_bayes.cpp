#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::ml {
namespace {

Dataset gaussian_classes(Rng& rng) {
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    d.add({rng.normal(0.0, 1.0), rng.normal(5.0, 1.0)}, 0);
    d.add({rng.normal(4.0, 1.0), rng.normal(0.0, 1.0)}, 1);
  }
  return d;
}

TEST(NaiveBayes, SeparableClasses) {
  Rng rng(1);
  NaiveBayesClassifier nb;
  nb.fit(gaussian_classes(rng));
  EXPECT_EQ(nb.predict(std::vector<double>{0.0, 5.0}), 0u);
  EXPECT_EQ(nb.predict(std::vector<double>{4.0, 0.0}), 1u);
}

TEST(NaiveBayes, HighAccuracyOnHeldOut) {
  Rng rng(2);
  NaiveBayesClassifier nb;
  nb.fit(gaussian_classes(rng));
  const auto test = gaussian_classes(rng);
  EXPECT_GT(nb.accuracy(test), 0.97);
}

TEST(NaiveBayes, UsesVarianceNotJustMean) {
  // Class 0: tight around 0. Class 1: wide around 0. A point at 3 is much
  // more likely under the wide class even though both means are 0.
  Rng rng(3);
  Dataset d;
  for (int i = 0; i < 500; ++i) {
    d.add({rng.normal(0.0, 0.5)}, 0);
    d.add({rng.normal(0.0, 5.0)}, 1);
  }
  NaiveBayesClassifier nb;
  nb.fit(d);
  EXPECT_EQ(nb.predict(std::vector<double>{4.0}), 1u);
  EXPECT_EQ(nb.predict(std::vector<double>{0.05}), 0u);
}

TEST(NaiveBayes, PriorMatters) {
  // Identical likelihoods, lopsided priors -> majority class wins.
  Rng rng(4);
  Dataset d;
  for (int i = 0; i < 95; ++i) {
    d.add({rng.normal(0.0, 1.0)}, 0);
  }
  for (int i = 0; i < 5; ++i) {
    d.add({rng.normal(0.0, 1.0)}, 1);
  }
  NaiveBayesClassifier nb;
  nb.fit(d);
  EXPECT_EQ(nb.predict(std::vector<double>{0.0}), 0u);
}

TEST(NaiveBayes, ConstantFeatureDoesNotCrash) {
  Dataset d;
  d.add({1.0, 0.0}, 0);
  d.add({1.0, 0.1}, 0);
  d.add({1.0, 5.0}, 1);
  d.add({1.0, 5.2}, 1);
  NaiveBayesClassifier nb;
  nb.fit(d);
  EXPECT_EQ(nb.predict(std::vector<double>{1.0, 0.05}), 0u);
  EXPECT_EQ(nb.predict(std::vector<double>{1.0, 5.1}), 1u);
}

TEST(NaiveBayes, EmptyFitThrows) {
  NaiveBayesClassifier nb;
  EXPECT_THROW(nb.fit(Dataset{}), PreconditionError);
  EXPECT_THROW(nb.predict(std::vector<double>{1.0}), PreconditionError);
}

TEST(NaiveBayes, Name) {
  EXPECT_EQ(NaiveBayesClassifier().name(), "NB");
}

}  // namespace
}  // namespace mandipass::ml

#include "ml/svm.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::ml {
namespace {

Dataset separable(Rng& rng) {
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.add({rng.normal(-2.0, 0.5), rng.normal(0.0, 0.5)}, 0);
    d.add({rng.normal(2.0, 0.5), rng.normal(0.0, 0.5)}, 1);
  }
  return d;
}

TEST(Svm, LinearlySeparable) {
  Rng rng(1);
  SvmClassifier svm;
  svm.fit(separable(rng));
  EXPECT_EQ(svm.predict(std::vector<double>{-2.0, 0.0}), 0u);
  EXPECT_EQ(svm.predict(std::vector<double>{2.0, 0.0}), 1u);
}

TEST(Svm, GeneralisesToHeldOut) {
  Rng rng(2);
  SvmClassifier svm;
  svm.fit(separable(rng));
  EXPECT_GT(svm.accuracy(separable(rng)), 0.97);
}

TEST(Svm, DecisionSignMatchesPrediction) {
  Rng rng(3);
  SvmClassifier svm;
  svm.fit(separable(rng));
  const std::vector<double> x{2.5, 0.1};
  EXPECT_GT(svm.decision(x, 1), svm.decision(x, 0));
}

TEST(Svm, ThreeClassesOneVsRest) {
  Rng rng(4);
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.add({rng.normal(0.0, 0.4), rng.normal(0.0, 0.4)}, 0);
    d.add({rng.normal(4.0, 0.4), rng.normal(0.0, 0.4)}, 1);
    d.add({rng.normal(2.0, 0.4), rng.normal(4.0, 0.4)}, 2);
  }
  SvmClassifier svm;
  svm.fit(d);
  EXPECT_EQ(svm.predict(std::vector<double>{0.0, 0.0}), 0u);
  EXPECT_EQ(svm.predict(std::vector<double>{4.0, 0.0}), 1u);
  EXPECT_EQ(svm.predict(std::vector<double>{2.0, 4.0}), 2u);
}

TEST(Svm, BiasHandlesOffsetData) {
  // Both classes on the same side of the origin: requires the bias term.
  Rng rng(5);
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    d.add({rng.normal(10.0, 0.3)}, 0);
    d.add({rng.normal(12.0, 0.3)}, 1);
  }
  SvmClassifier svm({.lambda = 1e-4, .epochs = 100});
  svm.fit(d);
  EXPECT_GT(svm.accuracy(d), 0.95);
}

TEST(Svm, DeterministicGivenSeed) {
  Rng rng(6);
  const auto data = separable(rng);
  SvmClassifier a({.seed = 9});
  SvmClassifier b({.seed = 9});
  a.fit(data);
  b.fit(data);
  const std::vector<double> x{0.3, -0.7};
  EXPECT_DOUBLE_EQ(a.decision(x, 0), b.decision(x, 0));
}

TEST(Svm, InvalidConfigThrows) {
  EXPECT_THROW(SvmClassifier({.lambda = 0.0}), PreconditionError);
  EXPECT_THROW(SvmClassifier({.lambda = 1e-4, .epochs = 0}), PreconditionError);
  SvmClassifier svm;
  EXPECT_THROW(svm.fit(Dataset{}), PreconditionError);
  EXPECT_THROW(svm.predict(std::vector<double>{0.0}), PreconditionError);
}

TEST(Svm, Name) {
  EXPECT_EQ(SvmClassifier().name(), "SVM");
}

}  // namespace
}  // namespace mandipass::ml

#include "ml/mlp.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::ml {
namespace {

TEST(Mlp, LearnsNonlinearBoundary) {
  Rng rng(1);
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    d.add({a, b}, (a * a + b * b < 0.4) ? 1u : 0u);  // circle inside square
  }
  MlpClassifier mlp({.hidden = 32, .epochs = 60, .lr = 5e-3});
  mlp.fit(d);
  EXPECT_GT(mlp.accuracy(d), 0.9);
}

TEST(Mlp, SeparableBlobsEasy) {
  Rng rng(2);
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.add({rng.normal(0.0, 0.5)}, 0);
    d.add({rng.normal(5.0, 0.5)}, 1);
  }
  MlpClassifier mlp;
  mlp.fit(d);
  EXPECT_EQ(mlp.predict(std::vector<double>{0.0}), 0u);
  EXPECT_EQ(mlp.predict(std::vector<double>{5.0}), 1u);
}

TEST(Mlp, DeterministicGivenSeed) {
  Rng rng(3);
  Dataset d;
  for (int i = 0; i < 50; ++i) {
    d.add({rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)}, i % 2);
  }
  MlpClassifier a({.epochs = 5, .seed = 7});
  MlpClassifier b({.epochs = 5, .seed = 7});
  a.fit(d);
  b.fit(d);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x{static_cast<double>(i) * 0.3 - 3.0, 0.5};
    EXPECT_EQ(a.predict(x), b.predict(x));
  }
}

TEST(Mlp, PredictBeforeFitThrows) {
  MlpClassifier mlp;
  EXPECT_THROW(mlp.predict(std::vector<double>{1.0}), PreconditionError);
}

TEST(Mlp, WrongFeatureCountThrows) {
  Rng rng(4);
  Dataset d;
  d.add({1.0, 2.0}, 0);
  d.add({3.0, 4.0}, 1);
  MlpClassifier mlp({.epochs = 1});
  mlp.fit(d);
  EXPECT_THROW(mlp.predict(std::vector<double>{1.0}), PreconditionError);
}

TEST(Mlp, InvalidConfigThrows) {
  EXPECT_THROW(MlpClassifier({.hidden = 0}), PreconditionError);
}

TEST(Mlp, Name) {
  EXPECT_EQ(MlpClassifier().name(), "NN");
}

}  // namespace
}  // namespace mandipass::ml

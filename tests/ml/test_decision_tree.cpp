#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::ml {
namespace {

TEST(DecisionTree, AxisAlignedSplit) {
  Dataset d;
  for (int i = 0; i < 20; ++i) {
    d.add({static_cast<double>(i)}, i < 10 ? 0u : 1u);
  }
  DecisionTreeClassifier dt;
  dt.fit(d);
  EXPECT_EQ(dt.predict(std::vector<double>{3.0}), 0u);
  EXPECT_EQ(dt.predict(std::vector<double>{15.0}), 1u);
  EXPECT_DOUBLE_EQ(dt.accuracy(d), 1.0);
}

TEST(DecisionTree, LearnsXorUnlikeLinearModels) {
  Dataset d;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    d.add({a, b}, ((a > 0.5) != (b > 0.5)) ? 1u : 0u);
  }
  DecisionTreeClassifier dt;
  dt.fit(d);
  EXPECT_GT(dt.accuracy(d), 0.95);
}

TEST(DecisionTree, MaxDepthLimitsTree) {
  Dataset d;
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    d.add({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)},
          static_cast<std::uint32_t>(rng.uniform_index(4)));
  }
  DecisionTreeConfig shallow;
  shallow.max_depth = 2;
  DecisionTreeClassifier dt(shallow);
  dt.fit(d);
  EXPECT_LE(dt.depth(), 2u);
  EXPECT_LE(dt.node_count(), 7u);  // 2^(d+1) - 1
}

TEST(DecisionTree, PureNodeStopsSplitting) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.add({static_cast<double>(i)}, 0u);
  }
  DecisionTreeClassifier dt;
  dt.fit(d);
  EXPECT_EQ(dt.node_count(), 1u);
  EXPECT_EQ(dt.predict(std::vector<double>{100.0}), 0u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Dataset d;
  d.add({0.0}, 0);
  d.add({1.0}, 1);
  DecisionTreeConfig cfg;
  cfg.min_samples_leaf = 2;
  cfg.min_samples_split = 2;
  DecisionTreeClassifier dt(cfg);
  dt.fit(d);
  EXPECT_EQ(dt.node_count(), 1u);  // split would create 1-sample leaves
}

TEST(DecisionTree, IdenticalFeaturesNoSplit) {
  Dataset d;
  d.add({1.0}, 0);
  d.add({1.0}, 1);
  d.add({1.0}, 0);
  d.add({1.0}, 0);
  DecisionTreeClassifier dt;
  dt.fit(d);
  EXPECT_EQ(dt.node_count(), 1u);
  EXPECT_EQ(dt.predict(std::vector<double>{1.0}), 0u);  // majority
}

TEST(DecisionTree, MultiClass) {
  Dataset d;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    d.add({rng.normal(0.0, 0.3)}, 0);
    d.add({rng.normal(3.0, 0.3)}, 1);
    d.add({rng.normal(6.0, 0.3)}, 2);
  }
  DecisionTreeClassifier dt;
  dt.fit(d);
  EXPECT_EQ(dt.predict(std::vector<double>{0.1}), 0u);
  EXPECT_EQ(dt.predict(std::vector<double>{2.9}), 1u);
  EXPECT_EQ(dt.predict(std::vector<double>{6.1}), 2u);
}

TEST(DecisionTree, InvalidConfigThrows) {
  DecisionTreeConfig bad;
  bad.max_depth = 0;
  EXPECT_THROW(DecisionTreeClassifier{bad}, PreconditionError);
  DecisionTreeClassifier dt;
  EXPECT_THROW(dt.fit(Dataset{}), PreconditionError);
  EXPECT_THROW(dt.predict(std::vector<double>{0.0}), PreconditionError);
}

TEST(DecisionTree, Name) {
  EXPECT_EQ(DecisionTreeClassifier().name(), "DT");
}

}  // namespace
}  // namespace mandipass::ml

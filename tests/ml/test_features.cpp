#include "ml/features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mandipass::ml {
namespace {

TEST(AxisStatistics, PaperOrderAndValues) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = axis_statistics(xs);
  ASSERT_EQ(s.size(), kStatsPerAxis);
  EXPECT_DOUBLE_EQ(s[0], 5.0);   // mean
  EXPECT_DOUBLE_EQ(s[1], 4.5);   // median
  EXPECT_DOUBLE_EQ(s[2], 4.0);   // variance
  EXPECT_DOUBLE_EQ(s[3], 2.0);   // std
  EXPECT_DOUBLE_EQ(s[4], 5.5);   // upper quartile
  EXPECT_DOUBLE_EQ(s[5], 4.0);   // lower quartile
}

TEST(AxisStatistics, EmptyThrows) {
  EXPECT_THROW(axis_statistics(std::vector<double>{}), PreconditionError);
}

TEST(Sfs, SixAxesGive36Features) {
  std::vector<std::vector<double>> axes(6, std::vector<double>{1.0, 2.0, 3.0});
  const auto f = sfs_features(axes);
  EXPECT_EQ(f.size(), 36u);  // the paper's 6 x 6
}

TEST(Sfs, ConcatenationOrder) {
  std::vector<std::vector<double>> axes{{1.0, 1.0}, {10.0, 10.0}};
  const auto f = sfs_features(axes);
  ASSERT_EQ(f.size(), 12u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);   // axis 0 mean
  EXPECT_DOUBLE_EQ(f[6], 10.0);  // axis 1 mean
}

TEST(Sfs, SensitiveToDistributionChange) {
  std::vector<std::vector<double>> a{{1.0, 2.0, 3.0}};
  std::vector<std::vector<double>> b{{1.0, 2.0, 9.0}};
  const auto fa = sfs_features(a);
  const auto fb = sfs_features(b);
  EXPECT_NE(fa[0], fb[0]);  // mean differs
  EXPECT_NE(fa[2], fb[2]);  // variance differs
}

}  // namespace
}  // namespace mandipass::ml

#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mandipass::ml {
namespace {

Dataset blob_dataset() {
  Dataset d;
  for (int i = 0; i < 50; ++i) {
    d.add({static_cast<double>(i), 100.0 - i}, i % 2 == 0 ? 0 : 1);
  }
  return d;
}

TEST(Dataset, AddAndCounts) {
  Dataset d;
  d.add({1.0, 2.0}, 3);
  d.add({4.0, 5.0}, 1);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_EQ(d.class_count(), 4u);  // labels 0..3
}

TEST(Dataset, MismatchedWidthThrows) {
  Dataset d;
  d.add({1.0, 2.0}, 0);
  EXPECT_THROW(d.add({1.0}, 0), PreconditionError);
}

TEST(Split, Proportions) {
  Rng rng(1);
  const auto s = train_test_split(blob_dataset(), 0.8, rng);
  EXPECT_EQ(s.train.size(), 40u);
  EXPECT_EQ(s.test.size(), 10u);
}

TEST(Split, PartitionIsDisjointAndComplete) {
  Rng rng(2);
  const auto data = blob_dataset();
  const auto s = train_test_split(data, 0.6, rng);
  // Feature 0 is a unique id per row; union must cover 0..49 exactly once.
  std::vector<bool> seen(50, false);
  auto mark = [&seen](const Dataset& d) {
    for (const auto& row : d.x) {
      const auto id = static_cast<std::size_t>(row[0]);
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  };
  mark(s.train);
  mark(s.test);
  for (bool b : seen) {
    EXPECT_TRUE(b);
  }
}

TEST(Split, DeterministicGivenSeed) {
  Rng a(3);
  Rng b(3);
  const auto sa = train_test_split(blob_dataset(), 0.8, a);
  const auto sb = train_test_split(blob_dataset(), 0.8, b);
  for (std::size_t i = 0; i < sa.train.size(); ++i) {
    EXPECT_EQ(sa.train.x[i][0], sb.train.x[i][0]);
  }
}

TEST(Split, InvalidFractionThrows) {
  Rng rng(4);
  EXPECT_THROW(train_test_split(blob_dataset(), 0.0, rng), PreconditionError);
  EXPECT_THROW(train_test_split(blob_dataset(), 1.0, rng), PreconditionError);
}

TEST(Scaler, ZeroMeanUnitVar) {
  StandardScaler scaler;
  const auto data = blob_dataset();
  scaler.fit(data);
  const auto scaled = scaler.transform(data);
  double sum0 = 0.0;
  double sq0 = 0.0;
  for (const auto& row : scaled.x) {
    sum0 += row[0];
    sq0 += row[0] * row[0];
  }
  const double n = static_cast<double>(scaled.size());
  EXPECT_NEAR(sum0 / n, 0.0, 1e-9);
  EXPECT_NEAR(sq0 / n, 1.0, 1e-9);
}

TEST(Scaler, ConstantFeatureMapsToZero) {
  Dataset d;
  d.add({5.0, 1.0}, 0);
  d.add({5.0, 2.0}, 1);
  StandardScaler scaler;
  scaler.fit(d);
  const auto row = scaler.transform(std::vector<double>{5.0, 1.5});
  EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(Scaler, PreservesLabels) {
  StandardScaler scaler;
  const auto data = blob_dataset();
  scaler.fit(data);
  const auto scaled = scaler.transform(data);
  EXPECT_EQ(scaled.y, data.y);
}

}  // namespace
}  // namespace mandipass::ml

#include "ml/knn.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::ml {
namespace {

/// Two well-separated Gaussian blobs.
Dataset blobs(std::size_t per_class, Rng& rng) {
  Dataset d;
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)}, 0);
    d.add({rng.normal(8.0, 1.0), rng.normal(8.0, 1.0)}, 1);
  }
  return d;
}

TEST(Knn, SeparableBlobsPerfect) {
  Rng rng(1);
  KnnClassifier knn(3);
  knn.fit(blobs(50, rng));
  EXPECT_EQ(knn.predict(std::vector<double>{0.5, -0.5}), 0u);
  EXPECT_EQ(knn.predict(std::vector<double>{7.5, 8.5}), 1u);
}

TEST(Knn, K1MemorisesTrainingSet) {
  Rng rng(2);
  KnnClassifier knn(1);
  const auto data = blobs(20, rng);
  knn.fit(data);
  EXPECT_DOUBLE_EQ(knn.accuracy(data), 1.0);
}

TEST(Knn, MajorityVote) {
  KnnClassifier knn(3);
  Dataset d;
  d.add({0.0}, 0);
  d.add({1.0}, 1);
  d.add({1.1}, 1);
  d.add({10.0}, 0);
  knn.fit(d);
  // Neighbours of 0.9: {1.0:1, 1.1:1, 0.0:0} -> majority 1.
  EXPECT_EQ(knn.predict(std::vector<double>{0.9}), 1u);
}

TEST(Knn, KLargerThanDatasetStillWorks) {
  KnnClassifier knn(100);
  Dataset d;
  d.add({0.0}, 0);
  d.add({1.0}, 0);
  d.add({5.0}, 1);
  knn.fit(d);
  EXPECT_EQ(knn.predict(std::vector<double>{0.4}), 0u);
}

TEST(Knn, HighDimensionalAccuracy) {
  Rng rng(3);
  Dataset train;
  Dataset test;
  for (int i = 0; i < 100; ++i) {
    std::vector<double> a(10);
    std::vector<double> b(10);
    for (std::size_t j = 0; j < 10; ++j) {
      a[j] = rng.normal(0.0, 1.0);
      b[j] = rng.normal(4.0, 1.0);
    }
    (i < 80 ? train : test).add(a, 0);
    (i < 80 ? train : test).add(b, 1);
  }
  KnnClassifier knn(5);
  knn.fit(train);
  EXPECT_GT(knn.accuracy(test), 0.95);
}

TEST(Knn, InvalidArgsThrow) {
  EXPECT_THROW(KnnClassifier(0), PreconditionError);
  KnnClassifier knn(3);
  EXPECT_THROW(knn.predict(std::vector<double>{1.0}), PreconditionError);  // not fitted
  EXPECT_THROW(knn.fit(Dataset{}), PreconditionError);
}

TEST(Knn, Name) {
  EXPECT_EQ(KnnClassifier().name(), "KNN");
}

}  // namespace
}  // namespace mandipass::ml

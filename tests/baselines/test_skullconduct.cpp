#include "baselines/skullconduct.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mandipass::baselines {
namespace {

class SkullConductTest : public ::testing::Test {
 protected:
  SkullConductTest() : rng_(7) {}
  Rng rng_;
};

TEST_F(SkullConductTest, RegistrationUnderOneSecond) {
  // Table I: SkullConduct RTC <= 1 s.
  SkullConductLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  EXPECT_LE(sys.enroll("u", person, {}), 1.0);
}

TEST_F(SkullConductTest, AcceptsGenuineInQuiet) {
  SkullConductLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  sys.enroll("u", person, {});
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    const auto d = sys.verify("u", person, {});
    ASSERT_TRUE(d.has_value());
    accepted += d->accepted ? 1 : 0;
  }
  EXPECT_GT(accepted, 45);
}

TEST_F(SkullConductTest, RejectsImpostor) {
  SkullConductLike sys(2.0, rng_);
  const auto genuine = sample_acoustic_profile(0, rng_);
  const auto impostor = sample_acoustic_profile(1, rng_);
  sys.enroll("u", genuine, {});
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    accepted += sys.verify("u", impostor, {})->accepted ? 1 : 0;
  }
  EXPECT_LT(accepted, 10);
}

TEST_F(SkullConductTest, ReplayOfStolenTemplateSucceeds) {
  // Table I: SkullConduct has NO replay-attack resilience — the raw
  // template replays perfectly (distance 0).
  SkullConductLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  sys.enroll("u", person, {});
  const auto stolen = sys.steal("u");
  ASSERT_TRUE(stolen.has_value());
  const auto d = sys.verify_replayed("u", *stolen);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->accepted);
  EXPECT_DOUBLE_EQ(d->distance, 0.0);
}

TEST_F(SkullConductTest, AcousticNoiseBreaksVerification) {
  // Table I: no immunity against acoustic noise.
  SkullConductLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  sys.enroll("u", person, {});
  AcousticMeasurementConfig loud;
  loud.ambient_noise_power = 20.0;
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    accepted += sys.verify("u", person, loud)->accepted ? 1 : 0;
  }
  EXPECT_LT(accepted, 25);  // FRR explodes in noise
}

TEST_F(SkullConductTest, UnknownUser) {
  SkullConductLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  EXPECT_FALSE(sys.verify("ghost", person, {}).has_value());
  EXPECT_FALSE(sys.steal("ghost").has_value());
}

TEST_F(SkullConductTest, InvalidThresholdThrows) {
  EXPECT_THROW(SkullConductLike(0.0, rng_), PreconditionError);
}

}  // namespace
}  // namespace mandipass::baselines

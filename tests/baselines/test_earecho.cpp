#include "baselines/earecho.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mandipass::baselines {
namespace {

class EarEchoTest : public ::testing::Test {
 protected:
  EarEchoTest() : rng_(13) {}
  Rng rng_;
};

TEST_F(EarEchoTest, RegistrationTakesOverOneSecond) {
  // Table I: EarEcho's multi-round registration misses the RTC <= 1 s bar.
  EarEchoLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  EXPECT_GT(sys.enroll("u", person, {}), 1.0);
}

TEST_F(EarEchoTest, AcceptsGenuineInQuiet) {
  EarEchoLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  sys.enroll("u", person, {});
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    accepted += sys.verify("u", person, {})->accepted ? 1 : 0;
  }
  EXPECT_GT(accepted, 45);
}

TEST_F(EarEchoTest, RejectsImpostor) {
  EarEchoLike sys(2.0, rng_);
  const auto genuine = sample_acoustic_profile(0, rng_);
  const auto impostor = sample_acoustic_profile(1, rng_);
  sys.enroll("u", genuine, {});
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    accepted += sys.verify("u", impostor, {})->accepted ? 1 : 0;
  }
  EXPECT_LT(accepted, 10);
}

TEST_F(EarEchoTest, ReplaySucceeds) {
  EarEchoLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  sys.enroll("u", person, {});
  const auto stolen = sys.steal("u");
  ASSERT_TRUE(stolen.has_value());
  EXPECT_TRUE(sys.verify_replayed("u", *stolen)->accepted);
}

TEST_F(EarEchoTest, NoiseBreaksVerification) {
  EarEchoLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  sys.enroll("u", person, {});
  AcousticMeasurementConfig loud;
  loud.ambient_noise_power = 20.0;
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    accepted += sys.verify("u", person, loud)->accepted ? 1 : 0;
  }
  EXPECT_LT(accepted, 25);
}

TEST_F(EarEchoTest, AveragingMakesVerifyTighterThanSingleProbe) {
  // The multi-round averaging exists for a reason: the enrolled template
  // has lower variance than a single probe.
  EarEchoLike sys(2.0, rng_);
  const auto person = sample_acoustic_profile(0, rng_);
  sys.enroll("u", person, {});
  double total = 0.0;
  for (int i = 0; i < 50; ++i) {
    total += sys.verify("u", person, {})->distance;
  }
  EXPECT_LT(total / 50.0, 1.0);
}

TEST_F(EarEchoTest, UnknownUser) {
  EarEchoLike sys(2.0, rng_);
  EXPECT_FALSE(sys.verify("ghost", sample_acoustic_profile(0, rng_), {}).has_value());
  EXPECT_FALSE(sys.verify_replayed("ghost", std::vector<double>(kAcousticBands, 0.0))
                   .has_value());
}

TEST_F(EarEchoTest, InvalidThresholdThrows) {
  EXPECT_THROW(EarEchoLike(-1.0, rng_), PreconditionError);
}

}  // namespace
}  // namespace mandipass::baselines

#include "baselines/acoustic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mandipass::baselines {
namespace {

TEST(Acoustic, ProfileHasPositiveGains) {
  Rng rng(1);
  const auto p = sample_acoustic_profile(3, rng);
  EXPECT_EQ(p.id, 3u);
  ASSERT_EQ(p.band_gain.size(), kAcousticBands);
  for (double g : p.band_gain) {
    EXPECT_GT(g, 0.0);
  }
}

TEST(Acoustic, ProfilesDiffer) {
  Rng rng(2);
  const auto a = sample_acoustic_profile(0, rng);
  const auto b = sample_acoustic_profile(1, rng);
  EXPECT_NE(a.band_gain, b.band_gain);
}

TEST(Acoustic, MeasurementRepeatsCloselyInQuiet) {
  Rng rng(3);
  const auto p = sample_acoustic_profile(0, rng);
  AcousticMeasurementConfig quiet;
  const auto m1 = measure_band_energies(p, quiet, rng);
  const auto m2 = measure_band_energies(p, quiet, rng);
  EXPECT_LT(feature_distance(m1, m2), 1.0);
}

TEST(Acoustic, DifferentPeopleFartherThanSamePerson) {
  Rng rng(4);
  const auto a = sample_acoustic_profile(0, rng);
  const auto b = sample_acoustic_profile(1, rng);
  AcousticMeasurementConfig quiet;
  double same = 0.0;
  double diff = 0.0;
  for (int i = 0; i < 50; ++i) {
    same += feature_distance(measure_band_energies(a, quiet, rng),
                             measure_band_energies(a, quiet, rng));
    diff += feature_distance(measure_band_energies(a, quiet, rng),
                             measure_band_energies(b, quiet, rng));
  }
  EXPECT_GT(diff, same * 2.0);
}

TEST(Acoustic, AmbientNoiseCorruptsMeasurement) {
  // The IAN failure mode: ambient acoustic noise moves the features.
  Rng rng(5);
  const auto p = sample_acoustic_profile(0, rng);
  AcousticMeasurementConfig quiet;
  AcousticMeasurementConfig loud;
  loud.ambient_noise_power = 10.0;
  double quiet_dist = 0.0;
  double loud_dist = 0.0;
  for (int i = 0; i < 50; ++i) {
    const auto ref = measure_band_energies(p, quiet, rng);
    quiet_dist += feature_distance(ref, measure_band_energies(p, quiet, rng));
    loud_dist += feature_distance(ref, measure_band_energies(p, loud, rng));
  }
  EXPECT_GT(loud_dist, quiet_dist * 2.0);
}

TEST(Acoustic, FeatureDistanceBasics) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(feature_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(feature_distance(a, a), 0.0);
  EXPECT_THROW(feature_distance(a, std::vector<double>{1.0}), PreconditionError);
}

}  // namespace
}  // namespace mandipass::baselines

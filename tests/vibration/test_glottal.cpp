#include "vibration/glottal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "dsp/fft.h"

namespace mandipass::vibration {
namespace {

PersonProfile test_person() {
  PersonProfile p;
  p.f0_hz = 140.0;
  p.duty_positive = 0.5;
  p.force_pos_n = 1.0;
  p.force_neg_n = 0.8;
  return p;
}

TEST(Glottal, OutputLength) {
  Rng rng(1);
  GlottalSource src(test_person(), {}, rng);
  const auto f = src.generate(0.5, 8000.0);
  EXPECT_EQ(f.size(), 4000u);
}

TEST(Glottal, ToneMultiplierScalesF0) {
  Rng rng(2);
  GlottalModifiers high;
  high.tone_multiplier = 1.2;
  GlottalSource src(test_person(), high, rng);
  EXPECT_NEAR(src.effective_f0(), 168.0, 1e-9);
}

TEST(Glottal, FundamentalAppearsInSpectrum) {
  Rng rng(3);
  GlottalModifiers quiet;
  quiet.amplitude_jitter = 0.0;
  quiet.f0_jitter = 0.0;
  GlottalSource src(test_person(), quiet, rng);
  const auto f = src.generate(1.0, 8000.0);
  const auto mag = dsp::magnitude_spectrum(f);
  const auto peak = dsp::dominant_bin(mag);
  const double freq = dsp::bin_frequency(peak, dsp::next_pow2(f.size()), 8000.0);
  EXPECT_NEAR(freq, 140.0, 10.0);
}

TEST(Glottal, PositiveAndNegativePhasesPresent) {
  Rng rng(4);
  GlottalSource src(test_person(), {}, rng);
  const auto f = src.generate(0.3, 8000.0);
  EXPECT_GT(*std::max_element(f.begin(), f.end()), 0.5);
  EXPECT_LT(*std::min_element(f.begin(), f.end()), -0.3);
}

TEST(Glottal, AsymmetricForcesRespectHabit) {
  Rng rng(5);
  GlottalModifiers quiet;
  quiet.amplitude_jitter = 0.0;
  quiet.f0_jitter = 0.0;
  quiet.duty_jitter = 0.0;
  quiet.force_ratio_jitter = 0.0;
  quiet.am_depth_min = 0.0;
  quiet.am_depth_max = 0.0;
  GlottalSource src(test_person(), quiet, rng);
  const auto f = src.generate(0.5, 8000.0);
  const double peak_pos = *std::max_element(f.begin(), f.end());
  const double peak_neg = -*std::min_element(f.begin(), f.end());
  EXPECT_NEAR(peak_pos, 1.0, 0.05);
  EXPECT_NEAR(peak_neg, 0.8, 0.05);
}

TEST(Glottal, EnvelopeStartsAndEndsQuiet) {
  Rng rng(6);
  GlottalSource src(test_person(), {}, rng);
  const auto f = src.generate(0.5, 8000.0);
  EXPECT_LT(std::abs(f.front()), 0.2);
  EXPECT_LT(std::abs(f.back()), 0.05);
  // Mid-signal is loud.
  double mid_max = 0.0;
  for (std::size_t i = f.size() / 3; i < 2 * f.size() / 3; ++i) {
    mid_max = std::max(mid_max, std::abs(f[i]));
  }
  EXPECT_GT(mid_max, 0.5);
}

TEST(Glottal, AmplitudeMultiplierScalesOutput) {
  Rng rng1(7);
  Rng rng2(7);
  GlottalModifiers base;
  base.amplitude_jitter = 0.0;
  base.f0_jitter = 0.0;
  GlottalModifiers loud = base;
  loud.amplitude_multiplier = 2.0;
  GlottalSource a(test_person(), base, rng1);
  GlottalSource b(test_person(), loud, rng2);
  const auto fa = a.generate(0.3, 8000.0);
  const auto fb = b.generate(0.3, 8000.0);
  const double ra = mandipass::stddev(fa);
  const double rb = mandipass::stddev(fb);
  EXPECT_NEAR(rb / ra, 2.0, 0.05);
}

TEST(Glottal, SessionsDiffer) {
  Rng rng(8);
  GlottalSource src(test_person(), {}, rng);
  const auto f1 = src.generate(0.3, 8000.0);
  const auto f2 = src.generate(0.3, 8000.0);
  double diff = 0.0;
  for (std::size_t i = 0; i < f1.size(); ++i) {
    diff += std::abs(f1[i] - f2[i]);
  }
  EXPECT_GT(diff, 1.0);  // jitter and phase make sessions distinct
}

TEST(Glottal, InvalidConfigThrows) {
  Rng rng(9);
  PersonProfile bad = test_person();
  bad.duty_positive = 0.0;
  EXPECT_THROW(GlottalSource(bad, {}, rng), PreconditionError);
  GlottalSource ok(test_person(), {}, rng);
  EXPECT_THROW(ok.generate(0.0, 8000.0), PreconditionError);
}

}  // namespace
}  // namespace mandipass::vibration

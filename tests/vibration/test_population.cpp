#include "vibration/population.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mandipass::vibration {
namespace {

TEST(Population, IdsAreSequential) {
  PopulationGenerator gen(1);
  const auto people = gen.sample_population(5);
  for (std::size_t i = 0; i < people.size(); ++i) {
    EXPECT_EQ(people[i].id, i);
  }
}

TEST(Population, DeterministicForSeed) {
  PopulationGenerator a(42);
  PopulationGenerator b(42);
  const auto pa = a.sample();
  const auto pb = b.sample();
  EXPECT_DOUBLE_EQ(pa.mass_kg, pb.mass_kg);
  EXPECT_DOUBLE_EQ(pa.f0_hz, pb.f0_hz);
  EXPECT_DOUBLE_EQ(pa.c1, pb.c1);
}

TEST(Population, PeopleDiffer) {
  PopulationGenerator gen(7);
  const auto people = gen.sample_population(20);
  std::set<double> masses;
  for (const auto& p : people) {
    masses.insert(p.mass_kg);
  }
  EXPECT_EQ(masses.size(), 20u);
}

TEST(Population, DerivedQuantitiesInConfiguredRanges) {
  PopulationGenerator gen(11);
  const PopulationConfig& c = gen.config();
  for (int i = 0; i < 200; ++i) {
    const auto p = gen.sample();
    EXPECT_GE(p.natural_freq_hz(), c.natural_freq_min_hz - 1e-9);
    EXPECT_LE(p.natural_freq_hz(), c.natural_freq_max_hz + 1e-9);
    EXPECT_GE(p.zeta_positive(), c.zeta_pos_min - 1e-9);
    EXPECT_LE(p.zeta_positive(), c.zeta_pos_max + 1e-9);
    EXPECT_GE(p.f0_hz, c.f0_min);
    EXPECT_LE(p.f0_hz, c.f0_max);
    EXPECT_GT(p.mass_kg, 0.0);
    EXPECT_GT(p.k1, 0.0);
    EXPECT_GT(p.k2, 0.0);
    EXPECT_GT(p.c1, 0.0);
    EXPECT_GT(p.c2, 0.0);
    EXPECT_GT(p.force_pos_n, 0.0);
    EXPECT_GT(p.force_neg_n, 0.0);
  }
}

TEST(Population, GenderFractionRoughlyRespected) {
  PopulationGenerator gen(13);
  int males = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    males += gen.sample().gender == Gender::Male ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(males) / n, 28.0 / 34.0, 0.03);
}

TEST(Population, ForcedGender) {
  PopulationGenerator gen(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.sample_with_gender(Gender::Female).gender, Gender::Female);
    EXPECT_EQ(gen.sample_with_gender(Gender::Male).gender, Gender::Male);
  }
}

TEST(Population, FemalesHaveHigherF0OnAverage) {
  PopulationGenerator gen(19);
  double male_f0 = 0.0;
  double female_f0 = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    male_f0 += gen.sample_with_gender(Gender::Male).f0_hz;
    female_f0 += gen.sample_with_gender(Gender::Female).f0_hz;
  }
  EXPECT_GT(female_f0 / n, male_f0 / n + 30.0);
}

TEST(Population, CouplingDirectionsNormalised) {
  PopulationGenerator gen(23);
  for (int i = 0; i < 50; ++i) {
    const auto p = gen.sample();
    const double na = p.accel_dir[0] * p.accel_dir[0] + p.accel_dir[1] * p.accel_dir[1] +
                      p.accel_dir[2] * p.accel_dir[2];
    EXPECT_NEAR(na, 1.0, 1e-9);
    const double ng = p.gyro_dir[0] * p.gyro_dir[0] + p.gyro_dir[1] * p.gyro_dir[1] +
                      p.gyro_dir[2] * p.gyro_dir[2];
    EXPECT_NEAR(ng, 1.0, 1e-9);
  }
}

TEST(Population, MimicCopiesObservableHabitKeepsPlant) {
  PopulationGenerator gen(29);
  const auto victim = gen.sample();
  const auto attacker = gen.sample();
  const auto mimic = PopulationGenerator::mimic(attacker, victim);
  // Observable manner copied from the victim: pitch and loudness.
  EXPECT_DOUBLE_EQ(mimic.f0_hz, victim.f0_hz);
  EXPECT_NEAR(0.5 * (mimic.force_pos_n + mimic.force_neg_n),
              0.5 * (victim.force_pos_n + victim.force_neg_n), 1e-12);
  // Involuntary articulation dynamics stay the attacker's...
  EXPECT_DOUBLE_EQ(mimic.duty_positive, attacker.duty_positive);
  EXPECT_NEAR(mimic.force_neg_n / mimic.force_pos_n,
              attacker.force_neg_n / attacker.force_pos_n, 1e-12);
  // ...as do plant and coupling.
  EXPECT_DOUBLE_EQ(mimic.mass_kg, attacker.mass_kg);
  EXPECT_DOUBLE_EQ(mimic.c1, attacker.c1);
  EXPECT_DOUBLE_EQ(mimic.k1, attacker.k1);
  EXPECT_EQ(mimic.accel_dir, attacker.accel_dir);
}

TEST(Population, MimicImperfectHasPitchError) {
  PopulationGenerator gen(31);
  const auto victim = gen.sample();
  const auto attacker = gen.sample();
  Rng rng(5);
  double total_rel_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto m = PopulationGenerator::mimic_imperfect(attacker, victim, rng, 0.04);
    total_rel_err += std::abs(m.f0_hz - victim.f0_hz) / victim.f0_hz;
    EXPECT_DOUBLE_EQ(m.mass_kg, attacker.mass_kg);
  }
  // Mean |error| of a half-normal with sigma 0.04 is ~3.2%.
  EXPECT_NEAR(total_rel_err / 200.0, 0.032, 0.01);
}

}  // namespace
}  // namespace mandipass::vibration

#include "vibration/nuisance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "dsp/fft.h"

namespace mandipass::vibration {
namespace {

TEST(Activity, StaticHasNoArtifact) {
  Rng rng(1);
  const auto art = generate_motion_artifact(Activity::Static, 1000, 8000.0, rng);
  for (const auto& a : art.accel_g) {
    EXPECT_DOUBLE_EQ(a[0], 0.0);
    EXPECT_DOUBLE_EQ(a[1], 0.0);
    EXPECT_DOUBLE_EQ(a[2], 0.0);
  }
}

TEST(Activity, RunStrongerThanWalk) {
  Rng rng(2);
  const std::size_t n = 32000;  // 4 s
  const auto walk = generate_motion_artifact(Activity::Walk, n, 8000.0, rng);
  const auto run = generate_motion_artifact(Activity::Run, n, 8000.0, rng);
  auto rms = [](const MotionArtifact& art) {
    double acc = 0.0;
    for (const auto& a : art.accel_g) {
      acc += a[0] * a[0] + a[1] * a[1] + a[2] * a[2];
    }
    return std::sqrt(acc / static_cast<double>(art.accel_g.size()));
  };
  EXPECT_GT(rms(run), rms(walk));
}

TEST(Activity, ArtifactIsLowFrequency) {
  // Section IV cites that body-movement components are < 10 Hz; the 20 Hz
  // high-pass must be able to remove them.
  Rng rng(3);
  const std::size_t n = 65536;
  const auto art = generate_motion_artifact(Activity::Run, n, 8000.0, rng);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = art.accel_g[i][0];
  }
  const auto power = dsp::power_spectrum(x);
  double low = 0.0;
  double high = 0.0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    const double f = dsp::bin_frequency(k, n, 8000.0);
    (f < 10.0 ? low : high) += power[k];
  }
  EXPECT_GT(low, high * 20.0);
}

TEST(Activity, GaitHasGyroComponent) {
  Rng rng(4);
  const auto art = generate_motion_artifact(Activity::Walk, 16000, 8000.0, rng);
  double max_gyro = 0.0;
  for (const auto& g : art.gyro_dps) {
    max_gyro = std::max(max_gyro, std::abs(g[1]));
  }
  EXPECT_GT(max_gyro, 1.0);
}

TEST(Food, NoneIsIdentity) {
  Rng rng(5);
  const auto m = food_damping_multiplier(Food::None, rng);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
}

TEST(Food, LollipopAndWaterPerturbMildly) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    for (const Food food : {Food::Lollipop, Food::Water}) {
      const auto m = food_damping_multiplier(food, rng);
      EXPECT_GE(m[0], 1.0);
      EXPECT_LE(m[0], 1.1);
      EXPECT_GE(m[1], 1.0);
      EXPECT_LE(m[1], 1.1);
    }
  }
}

TEST(Food, LollipopIsAsymmetric) {
  // A lollipop braces one side of the mouth: c1 shifts more than c2 on
  // average.
  Rng rng(7);
  double d1 = 0.0;
  double d2 = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto m = food_damping_multiplier(Food::Lollipop, rng);
    d1 += m[0] - 1.0;
    d2 += m[1] - 1.0;
  }
  EXPECT_GT(d1, d2);
}

TEST(Drift, ZeroDaysIsNearIdentity) {
  Rng rng(8);
  const auto d = sample_long_term_drift(0.0, rng);
  EXPECT_DOUBLE_EQ(d.f0_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(d.force_pos_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(d.reseat_yaw_deg, 0.0);
}

TEST(Drift, TwoWeeksStaysSmall) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto d = sample_long_term_drift(14.0, rng);
    EXPECT_GE(d.f0_multiplier, 0.9);
    EXPECT_LE(d.f0_multiplier, 1.1);
    EXPECT_GE(d.force_pos_multiplier, 0.7);
    EXPECT_LE(d.force_pos_multiplier, 1.3);
  }
}

TEST(Drift, GrowsWithTime) {
  Rng rng(10);
  double short_dev = 0.0;
  double long_dev = 0.0;
  for (int i = 0; i < 2000; ++i) {
    short_dev += std::abs(sample_long_term_drift(1.0, rng).f0_multiplier - 1.0);
    long_dev += std::abs(sample_long_term_drift(14.0, rng).f0_multiplier - 1.0);
  }
  EXPECT_GT(long_dev, short_dev * 2.0);
}

}  // namespace
}  // namespace mandipass::vibration

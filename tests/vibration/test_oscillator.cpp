#include "vibration/oscillator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace mandipass::vibration {
namespace {

PersonProfile plant(double mass, double k_total, double c1, double c2) {
  PersonProfile p;
  p.mass_kg = mass;
  p.k1 = k_total / 2.0;
  p.k2 = k_total / 2.0;
  p.c1 = c1;
  p.c2 = c2;
  return p;
}

TEST(Oscillator, RestStaysAtRest) {
  MandibleOscillator osc(plant(0.2, 4e4, 2.0, 2.0));
  std::vector<double> zero(100, 0.0);
  const auto t = osc.integrate(zero, 8000.0);
  for (double x : t.displacement) {
    EXPECT_DOUBLE_EQ(x, 0.0);
  }
}

TEST(Oscillator, StepResponseConvergesToStaticDeflection) {
  const double k_total = 4.0e4;
  MandibleOscillator osc(plant(0.2, k_total, 60.0, 60.0));
  std::vector<double> step(80000, 1.0);  // 10 s of constant 1 N
  const auto t = osc.integrate(step, 8000.0);
  EXPECT_NEAR(t.displacement.back(), 1.0 / k_total, 1e-7);
}

TEST(Oscillator, RingsNearNaturalFrequency) {
  // Impulse response of a lightly damped oscillator rings at ~wn.
  PersonProfile p = plant(0.2, 4.0e4, 4.0, 4.0);
  MandibleOscillator osc(p);
  std::vector<double> impulse(8000, 0.0);
  impulse[0] = 100.0;
  const auto t = osc.integrate(impulse, 8000.0);
  // Count zero crossings of displacement over 1 s.
  int crossings = 0;
  for (std::size_t i = 1; i < t.displacement.size(); ++i) {
    if ((t.displacement[i - 1] < 0.0) != (t.displacement[i] < 0.0)) {
      ++crossings;
    }
  }
  const double measured_freq = crossings / 2.0;  // crossings per second / 2
  EXPECT_NEAR(measured_freq, p.natural_freq_hz(), p.natural_freq_hz() * 0.1);
}

TEST(Oscillator, DampingDecaysEnergy) {
  MandibleOscillator osc(plant(0.2, 4.0e4, 10.0, 10.0));
  std::vector<double> impulse(16000, 0.0);
  impulse[0] = 100.0;
  const auto t = osc.integrate(impulse, 8000.0);
  double early = 0.0;
  double late = 0.0;
  for (std::size_t i = 0; i < 4000; ++i) {
    early = std::max(early, std::abs(t.displacement[i]));
    late = std::max(late, std::abs(t.displacement[i + 12000]));
  }
  EXPECT_LT(late, early * 0.2);
}

TEST(Oscillator, AsymmetricDampingShapesTheWaveform) {
  // c1 != c2 is the paper's core biometric asymmetry. Its imprint on the
  // waveform: the (3, 20) response must differ from BOTH symmetric
  // sandwiches (3, 3) and (20, 20) — the direction-switched damping is a
  // genuinely different plant, not equivalent to either average.
  const std::vector<double> cases{3.0, 20.0};
  std::vector<double> impulse(8000, 0.0);
  impulse[0] = 100.0;
  const auto mixed =
      MandibleOscillator(plant(0.2, 4.0e4, 3.0, 20.0)).integrate(impulse, 8000.0);
  for (double c : cases) {
    const auto sym = MandibleOscillator(plant(0.2, 4.0e4, c, c)).integrate(impulse, 8000.0);
    double diff = 0.0;
    double norm = 0.0;
    for (std::size_t i = 0; i < mixed.displacement.size(); ++i) {
      diff += std::abs(mixed.displacement[i] - sym.displacement[i]);
      norm += std::abs(sym.displacement[i]);
    }
    EXPECT_GT(diff / norm, 0.05) << "mixed plant indistinguishable from c1=c2=" << c;
  }
}

TEST(Oscillator, FoodOverrideChangesDamping) {
  PersonProfile p = plant(0.2, 4.0e4, 8.0, 8.0);
  MandibleOscillator normal(p);
  MandibleOscillator damped(p, p.c1 * 3.0, p.c2 * 3.0);
  EXPECT_DOUBLE_EQ(normal.effective_c1(), 8.0);
  EXPECT_DOUBLE_EQ(damped.effective_c1(), 24.0);
  std::vector<double> impulse(8000, 0.0);
  impulse[0] = 100.0;
  const auto tn = normal.integrate(impulse, 8000.0);
  const auto td = damped.integrate(impulse, 8000.0);
  double max_n = 0.0;
  double max_d = 0.0;
  for (std::size_t i = 4000; i < 8000; ++i) {
    max_n = std::max(max_n, std::abs(tn.displacement[i]));
    max_d = std::max(max_d, std::abs(td.displacement[i]));
  }
  EXPECT_LT(max_d, max_n);
}

TEST(Oscillator, TracesAligned) {
  MandibleOscillator osc(plant(0.2, 4.0e4, 5.0, 5.0));
  std::vector<double> f(100, 0.5);
  const auto t = osc.integrate(f, 8000.0);
  EXPECT_EQ(t.displacement.size(), 100u);
  EXPECT_EQ(t.velocity.size(), 100u);
  EXPECT_EQ(t.acceleration.size(), 100u);
}

TEST(Oscillator, InvalidPlantThrows) {
  PersonProfile p = plant(0.2, 4.0e4, 5.0, 5.0);
  p.mass_kg = 0.0;
  EXPECT_THROW(MandibleOscillator{p}, PreconditionError);
}

TEST(Profile, DerivedQuantities) {
  PersonProfile p = plant(0.1, 0.1 * std::pow(2.0 * std::numbers::pi * 100.0, 2.0), 5.0, 5.0);
  EXPECT_NEAR(p.natural_freq_hz(), 100.0, 1e-9);
  EXPECT_GT(p.zeta_positive(), 0.0);
  EXPECT_DOUBLE_EQ(p.zeta_positive(), p.zeta_negative());
  EXPECT_GT(p.path_attenuation(), 0.0);
  EXPECT_LT(p.path_attenuation(), 1.0);
}

}  // namespace
}  // namespace mandipass::vibration

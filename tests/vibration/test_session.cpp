#include "vibration/session.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "dsp/onset.h"
#include "vibration/population.h"

namespace mandipass::vibration {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : rng_(99), pop_(2024) {}

  Rng rng_;
  PopulationGenerator pop_;
};

std::vector<double> voiced_window(const imu::RawRecording& rec, imu::Axis axis,
                                  const SessionConfig& cfg) {
  const auto start =
      static_cast<std::size_t>((cfg.silence_s + 0.05) * cfg.sample_rate_hz);
  const auto end =
      static_cast<std::size_t>((cfg.silence_s + cfg.voice_s - 0.05) * cfg.sample_rate_hz);
  const auto& ch = rec.axis(axis);
  return {ch.begin() + static_cast<std::ptrdiff_t>(start),
          ch.begin() + static_cast<std::ptrdiff_t>(end)};
}

TEST_F(SessionTest, RecordingShape) {
  SessionRecorder rec(pop_.sample(), rng_);
  SessionConfig cfg;
  const auto r = rec.record(cfg);
  EXPECT_DOUBLE_EQ(r.sample_rate_hz, 350.0);
  const auto expected =
      static_cast<std::size_t>((cfg.silence_s + cfg.voice_s + cfg.tail_s) * 350.0);
  EXPECT_NEAR(static_cast<double>(r.sample_count()), static_cast<double>(expected), 2.0);
}

TEST_F(SessionTest, SilenceIsQuietVoicingIsLoud) {
  SessionRecorder rec(pop_.sample(), rng_);
  SessionConfig cfg;
  const auto r = rec.record(cfg);
  // Quiet leading window.
  std::vector<double> quiet(r.axis(imu::Axis::Ax).begin(),
                            r.axis(imu::Axis::Ax).begin() + 80);
  const auto loud = voiced_window(r, imu::Axis::Ax, cfg);
  // Some axis must be much louder while voicing; check the best one.
  double best_ratio = 0.0;
  for (std::size_t a = 0; a < 3; ++a) {
    std::vector<double> q(r.axes[a].begin(), r.axes[a].begin() + 80);
    const auto l = voiced_window(r, static_cast<imu::Axis>(a), cfg);
    best_ratio = std::max(best_ratio, mandipass::stddev(l) / (mandipass::stddev(q) + 1e-9));
  }
  EXPECT_GT(best_ratio, 4.0);
}

TEST_F(SessionTest, OnsetDetectableOnStrongestAxis) {
  SessionRecorder rec(pop_.sample(), rng_);
  SessionConfig cfg;
  int detected = 0;
  for (int i = 0; i < 20; ++i) {
    const auto r = rec.record(cfg);
    double best_peak = -1.0;
    std::size_t best_axis = 0;
    for (std::size_t a = 0; a < 3; ++a) {
      const auto stds = mandipass::windowed_stddev(r.axes[a], 10, 10);
      for (double s : stds) {
        if (s > best_peak) {
          best_peak = s;
          best_axis = a;
        }
      }
    }
    if (dsp::detect_onset(r.axes[best_axis]).has_value()) {
      ++detected;
    }
  }
  EXPECT_GE(detected, 18);  // the occasional miss is allowed (user retries)
}

TEST_F(SessionTest, ThroatLouderThanMandibleLouderThanEar) {
  // Fig. 1's propagation decay, averaged over several sessions.
  SessionRecorder rec(pop_.sample(), rng_);
  SessionConfig cfg;
  double std_throat = 0.0;
  double std_mandible = 0.0;
  double std_ear = 0.0;
  for (int i = 0; i < 5; ++i) {
    cfg.location = AttachLocation::Throat;
    std_throat += mandipass::stddev(voiced_window(rec.record(cfg), imu::Axis::Az, cfg));
    cfg.location = AttachLocation::Mandible;
    std_mandible += mandipass::stddev(voiced_window(rec.record(cfg), imu::Axis::Az, cfg));
    cfg.location = AttachLocation::Ear;
    std_ear += mandipass::stddev(voiced_window(rec.record(cfg), imu::Axis::Az, cfg));
  }
  EXPECT_GT(std_throat, std_mandible);
  EXPECT_GT(std_mandible, std_ear);
}

TEST_F(SessionTest, GravityGivesAxesDifferentBaselines) {
  // Fig. 5(b): start values differ across axes.
  SessionRecorder rec(pop_.sample(), rng_);
  const auto r = rec.record(SessionConfig{});
  std::vector<double> first_means;
  for (std::size_t a = 0; a < 3; ++a) {
    std::vector<double> head(r.axes[a].begin(), r.axes[a].begin() + 50);
    first_means.push_back(mandipass::mean(head));
  }
  // At least two accel axes sit at clearly different DC levels.
  const double spread = mandipass::max_value(first_means) - mandipass::min_value(first_means);
  EXPECT_GT(spread, 500.0);  // LSB
}

TEST_F(SessionTest, WalkAddsLowFrequencyEnergy) {
  SessionRecorder rec(pop_.sample(), rng_);
  SessionConfig still;
  SessionConfig walking;
  walking.activity = Activity::Walk;
  // Disable the sparse glitch process: a single +-4000 LSB spike in the
  // short quiet window would swamp the gait signal this test measures.
  still.sensor.glitch_probability = 0.0;
  walking.sensor.glitch_probability = 0.0;
  double e_still = 0.0;
  double e_walk = 0.0;
  for (int i = 0; i < 5; ++i) {
    // Compare the *quiet* leading samples: gait shows up before voicing.
    const auto rs = rec.record(still);
    const auto rw = rec.record(walking);
    std::vector<double> qs(rs.axis(imu::Axis::Ax).begin(), rs.axis(imu::Axis::Ax).begin() + 90);
    std::vector<double> qw(rw.axis(imu::Axis::Ax).begin(), rw.axis(imu::Axis::Ax).begin() + 90);
    e_still += mandipass::stddev(qs);
    e_walk += mandipass::stddev(qw);
  }
  EXPECT_GT(e_walk, e_still * 1.5);
}

TEST_F(SessionTest, DifferentPeopleProduceDifferentSignals) {
  auto p1 = pop_.sample();
  auto p2 = pop_.sample();
  SessionRecorder r1(p1, rng_);
  SessionRecorder r2(p2, rng_);
  const auto a = r1.record(SessionConfig{});
  const auto b = r2.record(SessionConfig{});
  const auto wa = voiced_window(a, imu::Axis::Az, SessionConfig{});
  const auto wb = voiced_window(b, imu::Axis::Az, SessionConfig{});
  EXPECT_LT(std::abs(mandipass::pearson(wa, wb)), 0.9);
}

TEST_F(SessionTest, RecordManyCount) {
  SessionRecorder rec(pop_.sample(), rng_);
  const auto batch = rec.record_many(SessionConfig{}, 7);
  EXPECT_EQ(batch.size(), 7u);
}

TEST_F(SessionTest, InvalidConfigThrows) {
  SessionRecorder rec(pop_.sample(), rng_);
  SessionConfig bad;
  bad.sample_rate_hz = 0.0;
  EXPECT_THROW(rec.record(bad), PreconditionError);
  SessionConfig bad2;
  bad2.internal_rate_hz = 100.0;  // below 2x the sensor rate
  EXPECT_THROW(rec.record(bad2), PreconditionError);
}

TEST_F(SessionTest, LeftEarStillProducesVibration) {
  SessionRecorder rec(pop_.sample(), rng_);
  SessionConfig left;
  left.ear_side = EarSide::Left;
  const auto r = rec.record(left);
  double best = 0.0;
  for (std::size_t a = 0; a < 3; ++a) {
    best = std::max(best, mandipass::stddev(voiced_window(r, static_cast<imu::Axis>(a), left)));
  }
  EXPECT_GT(best, 200.0);
}

}  // namespace
}  // namespace mandipass::vibration

#include "vibration/feasibility.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/stats.h"
#include "dsp/fft.h"
#include "vibration/oscillator.h"
#include "vibration/population.h"

namespace mandipass::vibration {
namespace {

PersonProfile reference_person() {
  PersonProfile p;
  p.mass_kg = 0.2;
  p.k1 = 2.0e4;
  p.k2 = 2.0e4;
  p.c1 = 25.0;
  p.c2 = 25.0;
  p.alpha_per_m = 9.0;
  p.dist_throat_mandible_m = 0.09;
  p.dist_mandible_ear_m = 0.055;
  p.f0_hz = 140.0;
  p.duty_positive = 0.5;
  p.force_pos_n = 0.5;
  p.force_neg_n = 0.5;
  return p;
}

TEST(Feasibility, ResonanceNearNaturalFrequency) {
  const auto p = reference_person();
  // Lightly damped: the theoretical |Y_P| peak sits near fn.
  EXPECT_NEAR(theoretical_resonance_hz(p), p.natural_freq_hz(), p.natural_freq_hz() * 0.1);
}

TEST(Feasibility, StifferPlantResonatesHigher) {
  auto soft = reference_person();
  auto stiff = reference_person();
  stiff.k1 *= 4.0;
  stiff.k2 *= 4.0;
  EXPECT_GT(theoretical_resonance_hz(stiff), theoretical_resonance_hz(soft) * 1.5);
}

TEST(Feasibility, HeavierMandibleResonatesLower) {
  auto light = reference_person();
  auto heavy = reference_person();
  heavy.mass_kg *= 4.0;
  EXPECT_LT(theoretical_resonance_hz(heavy), theoretical_resonance_hz(light) * 0.7);
}

TEST(Feasibility, AttenuationScalesWithExpAlphaD) {
  // Doubling alpha*d must scale |Y| by exactly e^{-alpha d} (Eq. 3).
  auto near = reference_person();
  auto far = reference_person();
  far.dist_mandible_ear_m += 0.02;
  const double w = 2.0 * std::numbers::pi * 80.0;
  const double ratio = std::abs(received_spectrum_at(far, Direction::Positive, w)) /
                       std::abs(received_spectrum_at(near, Direction::Positive, w));
  EXPECT_NEAR(ratio, std::exp(-near.alpha_per_m * 0.02), 1e-9);
}

TEST(Feasibility, SymmetricPlantHasNoDirectionAsymmetry) {
  const auto p = reference_person();  // c1 == c2, F_P == F_N, duty 0.5
  EXPECT_NEAR(direction_asymmetry(p), 0.0, 1e-12);
}

TEST(Feasibility, TissueAsymmetryShowsInSpectrum) {
  auto p = reference_person();
  p.c2 = 4.0 * p.c1;  // the paper's c1 != c2
  EXPECT_GT(direction_asymmetry(p), 0.02);
}

TEST(Feasibility, ForceAsymmetryShowsInSpectrum) {
  auto p = reference_person();
  p.force_neg_n = 0.5 * p.force_pos_n;
  EXPECT_GT(direction_asymmetry(p), 0.05);
}

TEST(Feasibility, DistinctPeopleDistinctSpectra) {
  PopulationGenerator gen(77);
  const auto a = gen.sample();
  const auto b = gen.sample();
  const auto sa = received_spectrum(a, 10.0, 250.0, 256);
  const auto sb = received_spectrum(b, 10.0, 250.0, 256);
  std::vector<double> ma;
  std::vector<double> mb;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ma.push_back(sa[i].magnitude_positive);
    mb.push_back(sb[i].magnitude_positive);
  }
  EXPECT_LT(pearson(ma, mb), 0.999);  // not the same curve
}

TEST(Feasibility, TheoryMatchesSimulatedOscillatorResonance) {
  // Cross-validation: the numerically integrated plant must ring at the
  // frequency the closed-form spectrum predicts.
  const auto p = reference_person();
  MandibleOscillator osc(p);
  const double fs = 8000.0;
  std::vector<double> impulse(16384, 0.0);
  impulse[0] = 100.0;
  const auto trace = osc.integrate(impulse, fs);
  const auto mag = dsp::magnitude_spectrum(trace.displacement);
  const std::size_t peak = dsp::dominant_bin(mag);
  const double sim_freq = dsp::bin_frequency(peak, dsp::next_pow2(impulse.size()), fs);
  EXPECT_NEAR(sim_freq, theoretical_resonance_hz(p), 6.0);
}

TEST(Feasibility, InvalidArgsThrow) {
  const auto p = reference_person();
  EXPECT_THROW(received_spectrum_at(p, Direction::Positive, 0.0), PreconditionError);
  EXPECT_THROW(received_spectrum(p, 0.0, 100.0, 16), PreconditionError);
  EXPECT_THROW(received_spectrum(p, 100.0, 50.0, 16), PreconditionError);
  EXPECT_THROW(received_spectrum(p, 10.0, 100.0, 1), PreconditionError);
}

}  // namespace
}  // namespace mandipass::vibration

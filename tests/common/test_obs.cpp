// Unit tests for the common::obs metrics/tracing layer (DESIGN.md §11).
//
// Metric names are unique per test: the registry is process-wide and
// never deallocates, so sharing a name across tests would couple their
// counts.
#include "common/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace mandipass::common::obs {
namespace {

TEST(ObsCounter, AddAndReset) {
  Counter& c = counter("test.counter.add_and_reset");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, SameNameSameInstance) {
  Counter& a = counter("test.counter.identity");
  Counter& b = counter("test.counter.identity");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsCounter, EmptyNameRejected) {
  EXPECT_THROW(counter(""), PreconditionError);
  EXPECT_THROW(gauge(""), PreconditionError);
  EXPECT_THROW(histogram(""), PreconditionError);
}

TEST(ObsGauge, LastWriteWins) {
  Gauge& g = gauge("test.gauge.last_write");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, BucketIndexLayout) {
  // Bucket 0 is [0, 1] µs; bucket k (k >= 1) is (2^(k-1), 2^k].
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.5), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.5), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(1024.0), 10u);
  EXPECT_EQ(Histogram::bucket_index(1025.0), 11u);
  // Values beyond the largest finite bucket land in the overflow bucket.
  EXPECT_EQ(Histogram::bucket_index(1e18), Histogram::kBucketCount - 1);
}

TEST(ObsHistogram, CountSumMinMax) {
  Histogram& h = histogram("test.hist.count_sum");
  h.record(10.0);
  h.record(30.0);
  h.record(20.0);
  const HistogramSnapshot s = h.snapshot("test.hist.count_sum");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum_us, 60.0);
  EXPECT_DOUBLE_EQ(s.min_us, 10.0);
  EXPECT_DOUBLE_EQ(s.max_us, 30.0);
}

TEST(ObsHistogram, EmptyQuantilesAreZero) {
  Histogram& h = histogram("test.hist.empty");
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  const HistogramSnapshot s = h.snapshot("test.hist.empty");
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min_us, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 0.0);
}

TEST(ObsHistogram, QuantileOrderingAndBucketBound) {
  // Record 1..1000 µs, so the true quantiles are known exactly. The
  // estimator returns the upper bound of the bucket holding the target
  // sample clamped to the observed max: ordered in q, never below the
  // true quantile, and at most one power-of-two bucket (2x) above it.
  Histogram& h = histogram("test.hist.quantiles");
  for (int v = 1; v <= 1000; ++v) {
    h.record(static_cast<double>(v));
  }
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p95, 950.0);
  EXPECT_LE(p95, 1900.0);
  EXPECT_GE(p99, 990.0);
  EXPECT_LE(p99, 1980.0);
  // p100 clamps to the observed max exactly.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(ObsHistogram, OverflowBucketClampsToObservedMax) {
  Histogram& h = histogram("test.hist.overflow");
  h.record(1e9);  // ~17 minutes, beyond the largest finite bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1e9);
  EXPECT_DOUBLE_EQ(h.snapshot("test.hist.overflow").max_us, 1e9);
}

TEST(ObsHistogram, NegativeAndNanRecordAsZero) {
  Histogram& h = histogram("test.hist.nonfinite");
  h.record(-5.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  const HistogramSnapshot s = h.snapshot("test.hist.nonfinite");
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min_us, 0.0);
  EXPECT_DOUBLE_EQ(s.max_us, 0.0);
}

TEST(ObsHistogram, ResetKeepsReferenceValid) {
  Histogram& h = histogram("test.hist.reset");
  h.record(100.0);
  Registry::instance().reset();
  EXPECT_EQ(h.count(), 0u);
  h.record(7.0);  // the pre-reset reference still works
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(&h, &histogram("test.hist.reset"));
}

TEST(ObsTraceScope, RecordsElapsedMicroseconds) {
  Histogram& h = histogram("test.trace.records");
  {
    TraceScope t(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 2000.0);  // at least the 2 ms we slept
}

TEST(ObsTraceScope, DisabledRecordsNothing) {
  Histogram& h = histogram("test.trace.disabled");
  set_enabled(false);
  {
    TraceScope t(h);
  }
  set_enabled(true);
  EXPECT_EQ(h.count(), 0u);
  {
    TraceScope t(h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsMacros, CountGaugeTrace) {
  MANDIPASS_OBS_COUNT("test.macro.count");
  MANDIPASS_OBS_COUNT_N("test.macro.count", 4);
  EXPECT_EQ(counter("test.macro.count").value(), 5u);
  MANDIPASS_OBS_GAUGE_SET("test.macro.gauge", 0.75);
  EXPECT_DOUBLE_EQ(gauge("test.macro.gauge").value(), 0.75);
  {
    MANDIPASS_OBS_TRACE(t, "test.macro.trace_us");
  }
  EXPECT_EQ(histogram("test.macro.trace_us").count(), 1u);
}

TEST(ObsMacros, SampledTraceRecordsFirstThenEveryPeriod) {
  // period_log2 = 2 -> every 4th pass is timed, starting with pass 0.
  // 10 passes hit ticks 0, 4 and 8: exactly three recordings.
  for (int i = 0; i < 10; ++i) {
    MANDIPASS_OBS_TRACE_SAMPLED(t, "test.macro.sampled_us", 2);
  }
  EXPECT_EQ(histogram("test.macro.sampled_us").count(), 3u);
  // period_log2 = 0 degenerates to tracing every pass.
  for (int i = 0; i < 5; ++i) {
    MANDIPASS_OBS_TRACE_SAMPLED(t, "test.macro.sampled_all_us", 0);
  }
  EXPECT_EQ(histogram("test.macro.sampled_all_us").count(), 5u);
}

TEST(ObsRegistry, SnapshotSortedAndComplete) {
  counter("test.snap.b").add(2);
  counter("test.snap.a").add(1);
  gauge("test.snap.g").set(3.0);
  histogram("test.snap.h").record(12.0);
  const MetricsSnapshot snap = Registry::instance().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  const auto counter_value = [&](std::string_view name) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) {
        return c.value;
      }
    }
    return ~std::uint64_t{0};
  };
  EXPECT_EQ(counter_value("test.snap.a"), 1u);
  EXPECT_EQ(counter_value("test.snap.b"), 2u);
  bool found_gauge = false;
  for (const auto& g : snap.gauges) {
    found_gauge = found_gauge || (g.name == "test.snap.g" && g.value == 3.0);
  }
  EXPECT_TRUE(found_gauge);
  bool found_hist = false;
  for (const auto& h : snap.histograms) {
    found_hist = found_hist || (h.name == "test.snap.h" && h.count == 1);
  }
  EXPECT_TRUE(found_hist);
}

TEST(ObsConcurrency, ThreadPoolIncrementsSumExactly) {
  // N lanes x M increments over the pool must sum exactly: counters are
  // relaxed atomics, so no update may be lost (and TSan must see no race).
  ThreadPool pool(4);
  Counter& c = counter("test.conc.pool_counter");
  Histogram& h = histogram("test.conc.pool_hist");
  constexpr std::size_t kItems = 64;
  constexpr std::size_t kIncrements = 2000;
  pool.parallel_for(0, kItems, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t k = 0; k < kIncrements; ++k) {
        c.add();
        h.record(static_cast<double>(k % 32));
      }
    }
  });
  EXPECT_EQ(c.value(), kItems * kIncrements);
  EXPECT_EQ(h.count(), kItems * kIncrements);
}

TEST(ObsConcurrency, SnapshotDuringWritesIsBounded) {
  // A snapshot taken mid-run never exceeds the final total, and the final
  // snapshot is exact once writers are joined.
  Counter& c = counter("test.conc.snap_counter");
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  writers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_LE(c.value(), 3 * kPerThread);
    }
  });
  for (auto& w : writers) {
    w.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(c.value(), 3 * kPerThread);
}

TEST(ObsConcurrency, RegistrationRaceYieldsOneInstance) {
  // Many threads registering the same name concurrently must all get the
  // same Counter.
  ThreadPool pool(4);
  std::vector<Counter*> seen(32, nullptr);
  pool.parallel_for(0, seen.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      seen[i] = &counter("test.conc.registration");
      seen[i]->add();
    }
  });
  for (const Counter* p : seen) {
    EXPECT_EQ(p, seen[0]);
  }
  EXPECT_EQ(seen[0]->value(), seen.size());
}

}  // namespace
}  // namespace mandipass::common::obs

#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass {
namespace {

TEST(Stats, MeanSimple) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanSingle) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0);
}

TEST(Stats, VarianceConstantIsZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, VarianceKnown) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MedianOdd) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.0);
}

TEST(Stats, MedianEvenInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 20.0);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Stats, MadKnown) {
  const std::vector<double> xs{1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0};
  // median = 2, |x - 2| = {1,1,0,0,2,4,7}, median of that = 1.
  EXPECT_DOUBLE_EQ(mad(xs), 1.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 4.0, 1.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 4.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonIndependentNearZero) {
  Rng rng(3);
  std::vector<double> xs(5000);
  std::vector<double> ys(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(Stats, WindowedStddevBasic) {
  // 20 samples: first 10 constant (std 0), last 10 alternate +-1 (std 1).
  std::vector<double> xs(20, 0.0);
  for (std::size_t i = 10; i < 20; ++i) {
    xs[i] = (i % 2 == 0) ? 1.0 : -1.0;
  }
  const auto stds = windowed_stddev(xs, 10, 10);
  ASSERT_EQ(stds.size(), 2u);
  EXPECT_DOUBLE_EQ(stds[0], 0.0);
  EXPECT_DOUBLE_EQ(stds[1], 1.0);
}

TEST(Stats, WindowedStddevDropsShortTail) {
  std::vector<double> xs(25, 0.0);
  EXPECT_EQ(windowed_stddev(xs, 10, 10).size(), 2u);
}

TEST(Stats, WindowedStddevStrideSmallerThanWindow) {
  std::vector<double> xs(30, 0.0);
  EXPECT_EQ(windowed_stddev(xs, 10, 5).size(), 5u);
}

TEST(Stats, WindowedStddevInputShorterThanWindow) {
  std::vector<double> xs(5, 1.0);
  EXPECT_TRUE(windowed_stddev(xs, 10, 10).empty());
}

TEST(Stats, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), PreconditionError);
  EXPECT_THROW(variance(empty), PreconditionError);
  EXPECT_THROW(median(empty), PreconditionError);
  EXPECT_THROW(min_value(empty), PreconditionError);
}

TEST(Stats, QuantileOutOfRangeThrows) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), PreconditionError);
  EXPECT_THROW(quantile(xs, 1.1), PreconditionError);
}

}  // namespace
}  // namespace mandipass

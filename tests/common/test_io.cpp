#include "common/io.h"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>

#include "common/error.h"

namespace mandipass::common {
namespace {

TEST(CheckedIo, ReadExactReadsAllBytes) {
  std::stringstream ss("abcdefgh");
  std::array<char, 8> buf{};
  read_exact(ss, buf.data(), buf.size(), "payload");
  EXPECT_EQ(std::string(buf.data(), buf.size()), "abcdefgh");
}

TEST(CheckedIo, ShortReadThrowsWithContext) {
  std::stringstream ss("abc");
  std::array<char, 8> buf{};
  try {
    read_exact(ss, buf.data(), buf.size(), "template data");
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    // The message must name the field and the byte counts so a truncated
    // template file is diagnosable from the exception alone.
    EXPECT_NE(std::string(e.what()).find("template data"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("8"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
  }
}

TEST(CheckedIo, EmptyStreamReadThrows) {
  std::stringstream ss;
  char c = 0;
  EXPECT_THROW(read_exact(ss, &c, 1, "byte"), SerializationError);
}

TEST(CheckedIo, ZeroSizeIsCheckedNoOp) {
  std::stringstream ss;
  EXPECT_NO_THROW(read_exact(ss, nullptr, 0, "nothing"));
  EXPECT_NO_THROW(write_exact(ss, nullptr, 0, "nothing"));
  EXPECT_TRUE(ss.good());
}

TEST(CheckedIo, WriteExactRoundTrips) {
  std::stringstream ss;
  const std::string payload = "template-bytes";
  write_exact(ss, payload.data(), payload.size(), "payload");
  EXPECT_EQ(ss.str(), payload);
}

TEST(CheckedIo, WriteToFailedStreamThrows) {
  std::stringstream ss;
  ss.setstate(std::ios::badbit);
  const char byte = 'x';
  EXPECT_THROW(write_exact(ss, &byte, 1, "byte"), SerializationError);
}

TEST(CheckedIo, NullBufferWithNonzeroSizeViolatesPrecondition) {
  std::stringstream ss("abc");
  EXPECT_THROW(read_exact(ss, nullptr, 3, "byte"), PreconditionError);
  EXPECT_THROW(write_exact(ss, nullptr, 3, "byte"), PreconditionError);
}

}  // namespace
}  // namespace mandipass::common

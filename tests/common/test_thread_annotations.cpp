// Thread-annotation macro expansion + annotated mutex wrapper semantics
// (DESIGN.md §14).
//
// The MANDIPASS_* macros must expand to *nothing* on compilers without
// the Clang capability attribute (GCC, MSVC) — the library builds the
// same object code everywhere and only the tsafety preset turns the
// analysis on — and to a real __attribute__ on Clang. The expansion
// tests pin both halves of that contract via stringization, so a future
// edit that, say, leaves a stray token in the GCC branch is caught by
// the default (GCC) CI build rather than only by a Clang build.
//
// The wrapper tests cover the runtime semantics the annotations describe:
// scoped guards acquire in the ctor and release in the dtor, deferred
// guards acquire on lock(), readers share and writers exclude, and a
// MutexLock satisfies BasicLockable for condition_variable_any.

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mandipass::common {
namespace {

#define MANDIPASS_TEST_STR2(x) #x
#define MANDIPASS_TEST_STR(x) MANDIPASS_TEST_STR2(x)

// Mirror of the header's attribute-availability gate.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MANDIPASS_TEST_HAVE_CAPABILITY_ATTR 1
#endif
#endif

#ifndef MANDIPASS_TEST_HAVE_CAPABILITY_ATTR
// Without the attribute every macro must vanish: the stringized
// expansion is the empty string (sizeof == 1 for the terminating NUL).
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_GUARDED_BY(m))) == 1,
              "MANDIPASS_GUARDED_BY must expand to nothing without Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_REQUIRES(m))) == 1,
              "MANDIPASS_REQUIRES must expand to nothing without Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_REQUIRES_SHARED(m))) == 1,
              "MANDIPASS_REQUIRES_SHARED must expand to nothing without Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_EXCLUDES(m))) == 1,
              "MANDIPASS_EXCLUDES must expand to nothing without Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_ACQUIRE(m))) == 1,
              "MANDIPASS_ACQUIRE must expand to nothing without Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_RELEASE(m))) == 1,
              "MANDIPASS_RELEASE must expand to nothing without Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_CAPABILITY("x"))) == 1,
              "MANDIPASS_CAPABILITY must expand to nothing without Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_SCOPED_CAPABILITY)) == 1,
              "MANDIPASS_SCOPED_CAPABILITY must expand to nothing without Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_ASSERT_CAPABILITY(m))) == 1,
              "MANDIPASS_ASSERT_CAPABILITY must expand to nothing without Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "MANDIPASS_NO_THREAD_SAFETY_ANALYSIS must expand to nothing without Clang");
#else
// With the attribute the macros must produce a real __attribute__ token
// sequence (non-empty expansion).
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_GUARDED_BY(m))) > 1,
              "MANDIPASS_GUARDED_BY must expand to an attribute on Clang");
static_assert(sizeof(MANDIPASS_TEST_STR(MANDIPASS_SCOPED_CAPABILITY)) > 1,
              "MANDIPASS_SCOPED_CAPABILITY must expand to an attribute on Clang");
#endif

/// Probes try_lock from a second thread — on std::mutex, try_lock on a
/// thread that already holds the lock is undefined, so the probe must
/// never run on the owning thread.
bool try_lock_elsewhere(Mutex& m) {
  bool acquired = false;
  std::thread t([&] {
    acquired = m.try_lock();
    if (acquired) {
      m.unlock();  // mandilint: allow(raw-lock-discipline) -- probe thread undoing its try_lock
    }
  });
  t.join();
  return acquired;
}

bool try_lock_elsewhere(SharedMutex& m) {
  bool acquired = false;
  std::thread t([&] {
    acquired = m.try_lock();
    if (acquired) {
      m.unlock();  // mandilint: allow(raw-lock-discipline) -- probe thread undoing its try_lock
    }
  });
  t.join();
  return acquired;
}

TEST(MutexLock, HoldsForScopeAndReleasesAtExit) {
  Mutex m;
  {
    MutexLock lock(m);
    EXPECT_TRUE(lock.owns_lock());
    EXPECT_FALSE(try_lock_elsewhere(m)) << "guard must hold the mutex";
  }
  EXPECT_TRUE(try_lock_elsewhere(m)) << "guard must release at scope exit";
}

TEST(MutexLock, DeferredConstructionDoesNotAcquire) {
  Mutex m;
  {
    MutexLock lock(m, kDeferLock);
    EXPECT_FALSE(lock.owns_lock());
    EXPECT_TRUE(try_lock_elsewhere(m)) << "deferred guard must not acquire";
    lock.lock();  // mandilint: allow(raw-lock-discipline) -- exercising the deferred-guard API itself
    EXPECT_TRUE(lock.owns_lock());
    EXPECT_FALSE(try_lock_elsewhere(m));
  }
  EXPECT_TRUE(try_lock_elsewhere(m)) << "dtor must release a deferred-then-acquired guard";
}

TEST(MutexLock, WorksAsBasicLockableForConditionVariableAny) {
  Mutex m;
  std::condition_variable_any cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(m);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(m);
    while (!ready) {
      cv.wait(lock);
    }
    EXPECT_TRUE(lock.owns_lock()) << "wait() must reacquire before returning";
  }
  producer.join();
}

TEST(WriterLock, ExcludesOtherWriters) {
  SharedMutex m;
  {
    WriterLock lock(m);
    EXPECT_TRUE(lock.owns_lock());
    EXPECT_FALSE(try_lock_elsewhere(m));
  }
  EXPECT_TRUE(try_lock_elsewhere(m));
}

TEST(ReaderLock, SharesWithReadersExcludesWriters) {
  SharedMutex m;
  ReaderLock first(m);
  // A second reader on another thread must succeed while a writer fails.
  bool reader_ok = false;
  std::thread reader([&] {
    ReaderLock second(m);
    reader_ok = second.owns_lock();
  });
  reader.join();
  EXPECT_TRUE(reader_ok) << "shared holds must coexist";
  EXPECT_FALSE(try_lock_elsewhere(m)) << "a writer must be excluded while readers hold";
}

TEST(ReaderLock, DeferredAcquireTakesSharedHold) {
  SharedMutex m;
  {
    ReaderLock lock(m, kDeferLock);
    EXPECT_FALSE(lock.owns_lock());
    lock.lock();  // mandilint: allow(raw-lock-discipline) -- exercising the deferred-guard API itself
    EXPECT_TRUE(lock.owns_lock());
    EXPECT_FALSE(try_lock_elsewhere(m)) << "shared hold must exclude writers";
  }
  EXPECT_TRUE(try_lock_elsewhere(m));
}

TEST(WriterLock, DeferredAcquireTakesExclusiveHold) {
  SharedMutex m;
  {
    WriterLock lock(m, kDeferLock);
    EXPECT_FALSE(lock.owns_lock());
    lock.lock();  // mandilint: allow(raw-lock-discipline) -- exercising the deferred-guard API itself
    EXPECT_TRUE(lock.owns_lock());
    EXPECT_FALSE(try_lock_elsewhere(m));
  }
  EXPECT_TRUE(try_lock_elsewhere(m));
}

}  // namespace
}  // namespace mandipass::common

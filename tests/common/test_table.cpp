#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace mandipass {
namespace {

TEST(Table, PrintsHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "b"});
  t.add_row({"long-cell-content", "x"});
  std::ostringstream os;
  t.print(os);
  // Header row must be padded to the widest cell + separator.
  const std::string first_line = os.str().substr(0, os.str().find('\n'));
  EXPECT_GE(first_line.size(), std::string("long-cell-content").size());
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table t({}), PreconditionError);
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_percent(0.0128, 2), "1.28%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Histogram, CountsFallInBins) {
  std::ostringstream os;
  print_histogram(os, {0.05, 0.15, 0.15, 0.95}, 0.0, 1.0, 10);
  const std::string out = os.str();
  // Second bin holds half the mass.
  EXPECT_NE(out.find("50.0%"), std::string::npos);
}

TEST(Histogram, ClampsOutOfRangeValues) {
  std::ostringstream os;
  print_histogram(os, {-5.0, 5.0}, 0.0, 1.0, 2);
  const std::string out = os.str();
  // Both land somewhere (50% each), nothing lost.
  EXPECT_NE(out.find("50.0%"), std::string::npos);
}

TEST(Histogram, InvalidArgsThrow) {
  std::ostringstream os;
  EXPECT_THROW(print_histogram(os, {}, 0.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(print_histogram(os, {}, 1.0, 1.0, 4), PreconditionError);
}

}  // namespace
}  // namespace mandipass

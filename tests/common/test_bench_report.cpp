// Tests for the minimal JSON value type and the BENCH_*.json schema:
// round-trips, malformed-input rejection, and the compare_reports()
// regression gate that tools/bench_compare fronts.
#include "common/bench_report.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/json.h"

namespace mandipass::common {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainersWithWhitespace) {
  const Json v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ");
  ASSERT_TRUE(v.is_object());
  const Json::Array& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
  EXPECT_TRUE(v.at("b").as_object().empty());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), SerializationError);
}

TEST(Json, StringEscapes) {
  const Json v = Json::parse(R"("line\n\ttab \"q\" \\ \u0041\u00e9")");
  EXPECT_EQ(v.as_string(), "line\n\ttab \"q\" \\ A\xc3\xa9");
  // Escapes survive a dump -> parse round trip.
  EXPECT_EQ(Json::parse(v.dump()).as_string(), v.as_string());
}

TEST(Json, MalformedInputsThrow) {
  const char* cases[] = {
      "",           "{",           "[1,",        "tru",
      "\"open",     "{\"a\":}",    "[1 2]",      "1.2.3",
      "{\"a\":1,}", "01x",         "\"\\q\"",    "nullnull",
      "[1] garbage", "\"\\ud800\"",
  };
  for (const char* text : cases) {
    EXPECT_THROW(Json::parse(text), SerializationError) << "input: " << text;
  }
}

TEST(Json, DepthLimitEnforced) {
  std::string deep;
  for (int i = 0; i < 200; ++i) {
    deep += "[";
  }
  deep += "1";
  for (int i = 0; i < 200; ++i) {
    deep += "]";
  }
  EXPECT_THROW(Json::parse(deep), SerializationError);
}

TEST(Json, NumberRoundTrip) {
  for (const double v : {0.0, -0.5, 1.0 / 3.0, 1e-300, 6.02214076e23, 123456789.0}) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_DOUBLE_EQ(parsed.as_number(), v);
  }
}

BenchReport sample_report() {
  BenchReport r;
  r.bench = "bench_sample";
  r.git_sha = "abc1234";
  r.threads = 4;
  r.quick = true;
  r.wall_s = 1.25;
  r.cpu_s = 4.5;
  r.metrics.counters = {{"core.prep.ok", 120}, {"auth.batch.verify_total", 64}};
  r.metrics.gauges = {{"core.trainer.train_accuracy", 0.9875}};
  obs::HistogramSnapshot h;
  h.name = "core.prep.process_us";
  h.count = 120;
  h.sum_us = 1680.0;
  h.min_us = 9.5;
  h.max_us = 40.0;
  h.p50_us = 16.0;
  h.p95_us = 32.0;
  h.p99_us = 40.0;
  r.metrics.histograms = {h};
  r.verdicts = {{"onset_detected", true, "onset at sample 100"},
                {"eer_below_bound", false, "eer 0.05 > 0.01"}};
  return r;
}

TEST(BenchReport, JsonRoundTripFieldByField) {
  const BenchReport a = sample_report();
  const BenchReport b = report_from_json(report_to_json(a));
  EXPECT_EQ(b.schema, kBenchSchemaVersion);
  EXPECT_EQ(b.bench, a.bench);
  EXPECT_EQ(b.git_sha, a.git_sha);
  EXPECT_EQ(b.threads, a.threads);
  EXPECT_EQ(b.quick, a.quick);
  EXPECT_DOUBLE_EQ(b.wall_s, a.wall_s);
  EXPECT_DOUBLE_EQ(b.cpu_s, a.cpu_s);
  ASSERT_EQ(b.metrics.counters.size(), a.metrics.counters.size());
  for (std::size_t i = 0; i < a.metrics.counters.size(); ++i) {
    EXPECT_EQ(b.metrics.counters[i].name, a.metrics.counters[i].name);
    EXPECT_EQ(b.metrics.counters[i].value, a.metrics.counters[i].value);
  }
  ASSERT_EQ(b.metrics.gauges.size(), 1u);
  EXPECT_EQ(b.metrics.gauges[0].name, a.metrics.gauges[0].name);
  EXPECT_DOUBLE_EQ(b.metrics.gauges[0].value, a.metrics.gauges[0].value);
  ASSERT_EQ(b.metrics.histograms.size(), 1u);
  const auto& ha = a.metrics.histograms[0];
  const auto& hb = b.metrics.histograms[0];
  EXPECT_EQ(hb.name, ha.name);
  EXPECT_EQ(hb.count, ha.count);
  EXPECT_DOUBLE_EQ(hb.sum_us, ha.sum_us);
  EXPECT_DOUBLE_EQ(hb.min_us, ha.min_us);
  EXPECT_DOUBLE_EQ(hb.max_us, ha.max_us);
  EXPECT_DOUBLE_EQ(hb.p50_us, ha.p50_us);
  EXPECT_DOUBLE_EQ(hb.p95_us, ha.p95_us);
  EXPECT_DOUBLE_EQ(hb.p99_us, ha.p99_us);
  ASSERT_EQ(b.verdicts.size(), 2u);
  EXPECT_EQ(b.verdicts[0].name, "onset_detected");
  EXPECT_TRUE(b.verdicts[0].pass);
  EXPECT_EQ(b.verdicts[0].detail, "onset at sample 100");
  EXPECT_FALSE(b.verdicts[1].pass);
}

TEST(BenchReport, RejectsWrongSchemaVersion) {
  std::string text = report_to_json(sample_report());
  const std::string needle = "\"schema\": 1";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "\"schema\": 99");
  EXPECT_THROW(report_from_json(text), SerializationError);
}

TEST(BenchReport, RejectsMissingField) {
  EXPECT_THROW(report_from_json("{\"schema\": 1}"), SerializationError);
}

TEST(BenchCompare, IdenticalReportsPass) {
  const BenchReport r = sample_report();
  const CompareResult res = compare_reports(r, r, {});
  EXPECT_FALSE(res.regression);
  EXPECT_FALSE(res.error);
  EXPECT_EQ(res.exit_code(), 0);
}

TEST(BenchCompare, LatencyRegressionFires) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  // p95 doubles: beyond the default +50% budget.
  cur.metrics.histograms[0].p95_us = base.metrics.histograms[0].p95_us * 2.0;
  const CompareResult res = compare_reports(base, cur, {});
  EXPECT_TRUE(res.regression);
  EXPECT_EQ(res.exit_code(), 1);
}

TEST(BenchCompare, LatencyWithinBudgetPasses) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics.histograms[0].p95_us = base.metrics.histograms[0].p95_us * 1.2;
  cur.wall_s = base.wall_s * 1.1;
  EXPECT_EQ(compare_reports(base, cur, {}).exit_code(), 0);
}

TEST(BenchCompare, AbsoluteSlackForbidsNoiseFlags) {
  // A 1 µs -> 4 µs move is a 300% jump but within the 5 µs absolute
  // slack: scheduler noise, not a regression.
  BenchReport base = sample_report();
  base.metrics.histograms[0].p50_us = 1.0;
  base.metrics.histograms[0].p95_us = 1.0;
  BenchReport cur = base;
  cur.metrics.histograms[0].p95_us = 4.0;
  EXPECT_EQ(compare_reports(base, cur, {}).exit_code(), 0);
}

TEST(BenchCompare, SkipLatencyIgnoresTimings) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics.histograms[0].p50_us = 1e6;
  cur.wall_s = 1e3;
  CompareOptions opts;
  opts.skip_latency = true;
  EXPECT_EQ(compare_reports(base, cur, opts).exit_code(), 0);
}

TEST(BenchCompare, CounterDriftFires) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics.counters[0].value += 1;  // counters are exact by default
  EXPECT_EQ(compare_reports(base, cur, {}).exit_code(), 1);
  // A per-metric override can relax exactly that counter.
  CompareOptions opts;
  opts.metric_tol[cur.metrics.counters[0].name] = 0.10;
  EXPECT_EQ(compare_reports(base, cur, opts).exit_code(), 0);
}

TEST(BenchCompare, MissingCounterFires) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics.counters.pop_back();
  EXPECT_EQ(compare_reports(base, cur, {}).exit_code(), 1);
}

TEST(BenchCompare, VerdictFlipFires) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.verdicts[0].pass = false;  // was passing in the baseline
  EXPECT_EQ(compare_reports(base, cur, {}).exit_code(), 1);
  // A verdict that already failed in the baseline cannot regress further.
  BenchReport cur2 = base;
  cur2.verdicts[1].detail = "still failing";
  EXPECT_EQ(compare_reports(base, cur2, {}).exit_code(), 0);
  // A passing verdict must not silently vanish.
  BenchReport cur3 = base;
  cur3.verdicts.erase(cur3.verdicts.begin());
  EXPECT_EQ(compare_reports(base, cur3, {}).exit_code(), 1);
}

TEST(BenchCompare, MismatchedReportsAreErrors) {
  const BenchReport base = sample_report();
  BenchReport other = base;
  other.bench = "bench_other";
  EXPECT_EQ(compare_reports(base, other, {}).exit_code(), 2);
  BenchReport scale = base;
  scale.quick = false;
  EXPECT_EQ(compare_reports(base, scale, {}).exit_code(), 2);
  BenchReport schema = base;
  schema.schema = 2;
  EXPECT_EQ(compare_reports(base, schema, {}).exit_code(), 2);
}

TEST(BenchCompare, GaugesAreInformationalOnly) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics.gauges[0].value = 0.01;  // accuracy collapse is not a *perf* gate
  EXPECT_EQ(compare_reports(base, cur, {}).exit_code(), 0);
}

}  // namespace
}  // namespace mandipass::common

// Deadline / ClockSource semantics (DESIGN.md §17): unlimited default,
// budget expiry against virtual and steady clocks, and the
// expired_after skew form that models deterministic slow-shard stalls.
#include "common/deadline.h"

#include <gtest/gtest.h>

#include <limits>

namespace mandipass::common {
namespace {

TEST(Deadline, DefaultIsUnlimited) {
  const Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.expired_after(std::numeric_limits<std::int64_t>::max() / 2));
  EXPECT_EQ(d.remaining_us(), std::numeric_limits<std::int64_t>::max());
}

TEST(Deadline, ExpiresExactlyWhenVirtualClockReachesBudget) {
  VirtualClock clock(1000);
  const auto d = Deadline::after_us(500, &clock);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_us(), 500);
  clock.advance_us(499);
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_us(), 1);
  clock.advance_us(1);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_us(), 0);
  clock.advance_us(10000);
  EXPECT_TRUE(d.expired());  // expiry is permanent on a monotone clock
}

TEST(Deadline, NonPositiveBudgetIsBornExpired) {
  VirtualClock clock(42);
  EXPECT_TRUE(Deadline::after_us(0, &clock).expired());
  EXPECT_TRUE(Deadline::after_us(-5, &clock).expired());
}

TEST(Deadline, AtUsPinsAnAbsoluteInstant) {
  VirtualClock clock(100);
  const auto d = Deadline::at_us(150, &clock);
  EXPECT_FALSE(d.expired());
  clock.advance_us(50);
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, ExpiredAfterModelsStallSkewWithoutAdvancingTheClock) {
  VirtualClock clock;
  const auto d = Deadline::after_us(5000, &clock);
  // A 4999us stall still fits the budget; a 5000us stall does not. The
  // clock itself never moves — this is how a slow shard's charge expires
  // its requests deterministically under any worker-thread interleaving.
  EXPECT_FALSE(d.expired_after(4999));
  EXPECT_TRUE(d.expired_after(5000));
  EXPECT_FALSE(d.expired());  // the probe did not consume any real time
}

TEST(Deadline, VirtualClockAdvancesMonotonically) {
  VirtualClock clock(7);
  EXPECT_EQ(clock.now_us(), 7);
  clock.advance_us(0);
  EXPECT_EQ(clock.now_us(), 7);
  clock.advance_us(13);
  EXPECT_EQ(clock.now_us(), 20);
}

TEST(Deadline, SteadyClockSourceIsMonotoneAndDefaultForAfterUs) {
  const auto& steady = SteadyClockSource::instance();
  const std::int64_t a = steady.now_us();
  const std::int64_t b = steady.now_us();
  EXPECT_LE(a, b);
  // Null clock → steady clock: a generous budget is not expired at birth
  // and a negative one is.
  EXPECT_FALSE(Deadline::after_us(60'000'000).expired());
  EXPECT_TRUE(Deadline::after_us(-1).expired());
}

}  // namespace
}  // namespace mandipass::common

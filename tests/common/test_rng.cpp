#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <algorithm>
#include <cmath>

namespace mandipass {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += (x - 10.0) * (x - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum2 / n), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto k = rng.uniform_index(10);
    ASSERT_LT(k, 10u);
    ++counts[k];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, UniformIndexOneAlwaysZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(41);
  const auto p = rng.permutation(100);
  ASSERT_EQ(p.size(), 100u);
  std::vector<bool> seen(100, false);
  for (std::size_t v : p) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, PermutationEmpty) {
  Rng rng(43);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.fork();
  // Child's outputs should differ from the parent's subsequent outputs.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDeterministic) {
  Rng a(53);
  Rng b(53);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ca(), cb());
  }
}

TEST(Rng, PreconditionViolations) {
  Rng rng(59);
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.5), PreconditionError);
}

}  // namespace
}  // namespace mandipass

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace mandipass::common {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t n : {0UL, 1UL, 7UL, 64UL, 1000UL}) {
    std::vector<std::atomic<int>> visits(n);
    pool.parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPool, ChunksAreContiguousAndOrdered) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(10, 110, 5, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 110u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i - 1].second, chunks[i].first);
  }
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(0, 100, 1, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  // range < 2 * grain => inline on the caller.
  pool.parallel_for(0, 7, 4, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 7u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 16, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallel_for(0, 8, 1, [&](std::size_t jlo, std::size_t jhi) {
        total.fetch_add(jhi - jlo, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 16u * 8u);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                 [&](std::size_t lo, std::size_t) {
                                   if (lo >= 0) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<std::size_t> n{0};
  pool.parallel_for(0, 10, 1, [&](std::size_t lo, std::size_t hi) {
    n.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(n.load(), 10u);
}

TEST(ThreadPool, PerIndexResultsIdenticalAcrossThreadCounts) {
  const std::size_t n = 512;
  std::vector<double> reference(n);
  for (std::size_t i = 0; i < n; ++i) {
    reference[i] = static_cast<double>(i) * 0.3 + 1.0;
  }
  auto compute = [&](std::size_t lanes) {
    ThreadPool pool(lanes);
    std::vector<double> out(n, 0.0);
    pool.parallel_for(0, n, 8, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        out[i] = static_cast<double>(i) * 0.3 + 1.0;
      }
    });
    return out;
  };
  EXPECT_EQ(compute(1), reference);
  EXPECT_EQ(compute(2), reference);
  EXPECT_EQ(compute(8), reference);
}

TEST(ThreadPool, GlobalPoolResize) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global_thread_count(), 3u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global_thread_count(), 1u);
  std::size_t covered = 0;
  parallel_for(0, 10, 1, [&](std::size_t lo, std::size_t hi) { covered += hi - lo; });
  EXPECT_EQ(covered, 10u);  // single lane: safe to accumulate unsynchronised
}

}  // namespace
}  // namespace mandipass::common

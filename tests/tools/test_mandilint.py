#!/usr/bin/env python3
"""Fixture tests for tools/lint/mandilint.py.

Each case builds a throwaway repo (a CMakeLists.txt stub plus source
files written from inline strings — fixtures are never committed as
scannable files, so the real repo lint stays clean) and runs the linter
programmatically. Covers the three concurrency rules added for the
thread-safety work (raw-lock-discipline, atomic-order-audit,
arena-escape — each with multiple violating fixtures), the resilience
rule no-unbounded-queue (queue-typed members in src/auth/ must carry a
bounded-by comment), waiver precedence
(file-level allow-file suppresses the named rule only; line-level allow
suppresses its own line only), and the CLI contract (exit 0/1/2,
unknown-rule waivers rejected, --list-rules lists the full catalogue).

The arena-escape cases force the regex backend so results are identical
whether or not a clang toolchain is installed on the host.
"""

from __future__ import annotations

import contextlib
import io
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools" / "lint"))

import mandilint  # noqa: E402


def write_repo(root: Path, files: dict[str, str]) -> None:
    (root / "CMakeLists.txt").write_text("# fixture repo\n", encoding="utf-8")
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")


class MandilintCase(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.repo = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def lint_files(self, files: dict[str, str], subdirs=("src",)) -> list:
        write_repo(self.repo, files)
        ctx = mandilint.Context(self.repo, arena_backend="regex")
        return mandilint.lint(self.repo, list(subdirs), ctx)

    def findings_for(self, rule: str, files: dict[str, str], subdirs=("src",)) -> list:
        return [f for f in self.lint_files(files, subdirs) if f.rule == rule]


GUARD = "MANDIPASS_EXPECTS(true);\n"  # satisfies expects-guard in .cpp fixtures


class RawLockDiscipline(MandilintCase):
    def test_bare_lock_and_unlock_are_flagged(self) -> None:
        found = self.findings_for(
            "raw-lock-discipline",
            {
                "src/a/engine.cpp": GUARD + "void f(M& m) {\n  m.lock();\n  m.unlock();\n}\n",
            },
        )
        self.assertEqual([f.line for f in found], [3, 4])

    def test_pthread_primitives_are_flagged(self) -> None:
        found = self.findings_for(
            "raw-lock-discipline",
            {"src/a/legacy.cpp": GUARD + "void f() { pthread_mutex_lock(&mu); }\n"},
        )
        self.assertEqual(len(found), 1)

    def test_shared_variants_are_flagged(self) -> None:
        found = self.findings_for(
            "raw-lock-discipline",
            {
                "src/a/rw.cpp": GUARD
                + "void f(S& m) {\n  m.lock_shared();\n  m.unlock_shared();\n}\n",
            },
        )
        self.assertEqual(len(found), 2)

    def test_scoped_guards_are_clean(self) -> None:
        found = self.findings_for(
            "raw-lock-discipline",
            {
                "src/a/good.cpp": GUARD
                + "void f(Mutex& m) {\n  MutexLock lock(m);\n  WriterLock w(m2);\n}\n",
            },
        )
        self.assertEqual(found, [])

    def test_wrapper_header_is_exempt(self) -> None:
        found = self.findings_for(
            "raw-lock-discipline",
            {"src/common/mutex.h": "#pragma once\nvoid lock() { m_.lock(); }\n"},
        )
        self.assertEqual(found, [])

    def test_outside_src_is_out_of_scope(self) -> None:
        found = self.findings_for(
            "raw-lock-discipline",
            {"tests/t.cpp": "void f(M& m) { m.lock(); }\n"},
            subdirs=("tests",),
        )
        self.assertEqual(found, [])

    def test_line_waiver_suppresses_one_site(self) -> None:
        found = self.findings_for(
            "raw-lock-discipline",
            {
                "src/a/mixed.cpp": GUARD
                + "void f(M& m) {\n"
                + "  m.lock();  // mandilint: allow(raw-lock-discipline) -- timed acquire\n"
                + "  m.unlock();\n"
                + "}\n",
            },
        )
        self.assertEqual([f.line for f in found], [4])


class AtomicOrderAudit(MandilintCase):
    def test_unjustified_acquire_is_flagged(self) -> None:
        found = self.findings_for(
            "atomic-order-audit",
            {"src/a/sync.cpp": GUARD + "auto v = x.load(std::memory_order_acquire);\n"},
        )
        self.assertEqual(len(found), 1)

    def test_unjustified_seq_cst_is_flagged(self) -> None:
        found = self.findings_for(
            "atomic-order-audit",
            {"src/a/sync.cpp": GUARD + "x.store(1, std::memory_order_seq_cst);\n"},
        )
        self.assertEqual(len(found), 1)

    def test_same_line_comment_justifies(self) -> None:
        found = self.findings_for(
            "atomic-order-audit",
            {
                "src/a/sync.cpp": GUARD
                + "auto v = x.load(std::memory_order_acquire);"
                + "  // pairs with the release store in publish()\n",
            },
        )
        self.assertEqual(found, [])

    def test_preceding_comment_line_justifies(self) -> None:
        found = self.findings_for(
            "atomic-order-audit",
            {
                "src/a/sync.cpp": GUARD
                + "// pairs with the release store in publish()\n"
                + "auto v = x.load(std::memory_order_acquire);\n",
            },
        )
        self.assertEqual(found, [])

    def test_relaxed_needs_no_justification(self) -> None:
        found = self.findings_for(
            "atomic-order-audit",
            {"src/a/sync.cpp": GUARD + "auto v = x.load(std::memory_order_relaxed);\n"},
        )
        self.assertEqual(found, [])

    def test_bare_atomic_outside_blessed_files_is_flagged(self) -> None:
        found = self.findings_for(
            "atomic-order-audit",
            {"src/a/state.h": "#pragma once\nstd::atomic<int> counter{0};\n"},
        )
        self.assertEqual(len(found), 1)

    def test_atomic_in_blessed_files_is_clean(self) -> None:
        found = self.findings_for(
            "atomic-order-audit",
            {
                "src/common/obs.h": "#pragma once\nstd::atomic<int> v{0};\n",
                "src/common/thread_pool.cpp": GUARD + "std::atomic<bool> stop{false};\n",
            },
        )
        self.assertEqual(found, [])


ARENA_HINT = "// uses ScratchArena\n"


class ArenaEscape(MandilintCase):
    def test_member_stored_arena_pointer_is_flagged(self) -> None:
        found = self.findings_for(
            "arena-escape",
            {"src/a/holder.h": "#pragma once\nclass H {\n  ScratchArena* arena_ = nullptr;\n};\n"},
        )
        self.assertEqual(len(found), 1)

    def test_returning_alloc_result_is_flagged(self) -> None:
        found = self.findings_for(
            "arena-escape",
            {
                "src/a/leak.cpp": GUARD
                + ARENA_HINT
                + "float* f(ScratchArena& arena) {\n  return arena.alloc(64);\n}\n",
            },
        )
        self.assertEqual(len(found), 1)

    def test_member_stored_alloc_result_is_flagged(self) -> None:
        found = self.findings_for(
            "arena-escape",
            {
                "src/a/cache.cpp": GUARD
                + ARENA_HINT
                + "void H::warm(ScratchArena& arena) {\n  buf_ = arena.alloc(64);\n}\n",
            },
        )
        self.assertEqual(len(found), 1)

    def test_arena_handed_to_thread_is_flagged(self) -> None:
        found = self.findings_for(
            "arena-escape",
            {
                "src/a/spawn.cpp": GUARD
                + ARENA_HINT
                + "void f(ScratchArena& arena) {\n"
                + "  std::thread t([&arena] { arena.reset(); });\n"
                + "}\n",
            },
        )
        self.assertEqual(len(found), 1)

    def test_local_use_is_clean(self) -> None:
        found = self.findings_for(
            "arena-escape",
            {
                "src/a/ok.cpp": GUARD
                + "void f(ScratchArena& arena, float* out) {\n"
                + "  float* tmp = arena.alloc(64);\n"
                + "  out[0] = tmp[0];\n"
                + "}\n",
            },
        )
        self.assertEqual(found, [])

    def test_inference_plan_itself_is_exempt(self) -> None:
        found = self.findings_for(
            "arena-escape",
            {
                "src/nn/inference_plan.cpp": GUARD
                + "float* ScratchArena::alloc(std::size_t n) { return blocks_.alloc(n); }\n",
            },
        )
        self.assertEqual(found, [])


class NoUnboundedQueue(MandilintCase):
    def test_uncommented_deque_member_in_auth_is_flagged(self) -> None:
        found = self.findings_for(
            "no-unbounded-queue",
            {
                "src/auth/q.h": "#pragma once\nclass Q {\n  std::deque<Item> pending_;\n};\n",
            },
        )
        self.assertEqual([f.line for f in found], [3])

    def test_queue_and_priority_queue_members_are_flagged(self) -> None:
        found = self.findings_for(
            "no-unbounded-queue",
            {
                "src/auth/q.h": "#pragma once\nclass Q {\n"
                "  std::queue<Item> inbox_;\n"
                "  std::priority_queue<Item, std::vector<Item>, Cmp> heap_{};\n"
                "};\n",
            },
        )
        self.assertEqual([f.line for f in found], [3, 4])

    def test_same_line_bounded_by_comment_is_clean(self) -> None:
        found = self.findings_for(
            "no-unbounded-queue",
            {
                "src/auth/q.h": "#pragma once\nclass Q {\n"
                "  std::deque<Item> pending_;  // bounded-by: capacity_, enforced in try_push\n"
                "};\n",
            },
        )
        self.assertEqual(found, [])

    def test_preceding_line_bounded_by_comment_is_clean(self) -> None:
        found = self.findings_for(
            "no-unbounded-queue",
            {
                "src/auth/q.h": "#pragma once\nclass Q {\n"
                "  // bounded-by: capacity_, enforced in try_push\n"
                "  std::deque<Item> pending_;\n"
                "};\n",
            },
        )
        self.assertEqual(found, [])

    def test_line_waiver_suppresses(self) -> None:
        found = self.findings_for(
            "no-unbounded-queue",
            {
                "src/auth/q.h": "#pragma once\nclass Q {\n"
                "  std::deque<Item> pending_;"
                "  // mandilint: allow(no-unbounded-queue) -- drained every tick\n"
                "};\n",
            },
        )
        self.assertEqual(found, [])

    def test_queue_member_outside_auth_is_out_of_scope(self) -> None:
        found = self.findings_for(
            "no-unbounded-queue",
            {
                "src/common/q.h": "#pragma once\nclass Q {\n  std::deque<Item> pending_;\n};\n",
            },
        )
        self.assertEqual(found, [])

    def test_local_queue_variable_is_not_a_member(self) -> None:
        found = self.findings_for(
            "no-unbounded-queue",
            {
                "src/auth/q.cpp": GUARD
                + "void f() {\n  std::deque<Item> scratch;\n  use(scratch);\n}\n",
            },
        )
        self.assertEqual(found, [])


class WaiverPrecedence(MandilintCase):
    def test_file_waiver_suppresses_named_rule_only(self) -> None:
        files = {
            "src/a/mixed.cpp": GUARD
            + "// mandilint: allow-file(raw-lock-discipline) -- transition period\n"
            + "void f(M& m) {\n"
            + "  m.lock();\n"
            + "  auto v = x.load(std::memory_order_acquire);\n"
            + "}\n",
        }
        all_findings = self.lint_files(files)
        rules = sorted({f.rule for f in all_findings})
        self.assertNotIn("raw-lock-discipline", rules, "file waiver must suppress its rule")
        self.assertIn("atomic-order-audit", rules, "file waiver must not leak to other rules")

    def test_file_waiver_does_not_cross_files(self) -> None:
        files = {
            "src/a/waived.cpp": GUARD
            + "// mandilint: allow-file(raw-lock-discipline) -- transition period\n"
            + "void f(M& m) { m.lock(); }\n",
            "src/a/unwaived.cpp": GUARD + "void g(M& m) { m.lock(); }\n",
        }
        found = [f for f in self.lint_files(files) if f.rule == "raw-lock-discipline"]
        self.assertEqual([f.path for f in found], ["src/a/unwaived.cpp"])

    def test_line_waiver_for_other_rule_does_not_suppress(self) -> None:
        found = self.findings_for(
            "raw-lock-discipline",
            {
                "src/a/wrong.cpp": GUARD
                + "void f(M& m) {\n"
                + "  m.lock();  // mandilint: allow(unchecked-io) -- wrong rule\n"
                + "}\n",
            },
        )
        self.assertEqual(len(found), 1)

    def test_unknown_rule_in_waiver_is_a_usage_error(self) -> None:
        write_repo(
            self.repo,
            {"src/a/typo.cpp": GUARD + "int x;  // mandilint: allow(raw-lock-dicipline)\n"},
        )
        ctx = mandilint.Context(self.repo, arena_backend="regex")
        with self.assertRaises(mandilint.UsageError):
            mandilint.lint(self.repo, ["src"], ctx)


class CliContract(MandilintCase):
    def run_cli(self, argv: list[str]) -> tuple[int, str, str]:
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = mandilint.main(argv)
        return code, out.getvalue(), err.getvalue()

    def test_clean_repo_exits_zero(self) -> None:
        write_repo(self.repo, {"src/a/ok.h": "#pragma once\nint f();\n"})
        code, out, _ = self.run_cli(
            ["--repo", str(self.repo), "--arena-backend", "regex", "src"]
        )
        self.assertEqual(code, 0)
        self.assertIn("clean", out)

    def test_findings_exit_one(self) -> None:
        write_repo(self.repo, {"src/a/bad.cpp": GUARD + "void f(M& m) { m.lock(); }\n"})
        code, out, err = self.run_cli(
            ["--repo", str(self.repo), "--arena-backend", "regex", "src"]
        )
        self.assertEqual(code, 1)
        self.assertIn("raw-lock-discipline", out)
        self.assertIn("finding(s)", err)

    def test_unknown_waiver_rule_exits_two_with_usage(self) -> None:
        write_repo(
            self.repo,
            {"src/a/typo.cpp": GUARD + "int x;  // mandilint: allow(not-a-rule)\n"},
        )
        code, _, err = self.run_cli(
            ["--repo", str(self.repo), "--arena-backend", "regex", "src"]
        )
        self.assertEqual(code, 2)
        self.assertIn("unknown rule 'not-a-rule'", err)
        self.assertIn("valid rules:", err)

    def test_bad_repo_root_exits_two(self) -> None:
        code, _, err = self.run_cli(["--repo", str(self.repo / "nowhere"), "src"])
        self.assertEqual(code, 2)
        self.assertIn("repo root", err)

    def test_bad_compile_commands_exits_two(self) -> None:
        write_repo(self.repo, {"src/a/ok.h": "#pragma once\n"})
        bad = self.repo / "cc.json"
        bad.write_text("{not json", encoding="utf-8")
        code, _, err = self.run_cli(
            ["--repo", str(self.repo), "--compile-commands", str(bad), "src"]
        )
        self.assertEqual(code, 2)
        self.assertIn("compile database", err)

    def test_list_rules_names_every_rule(self) -> None:
        code, out, _ = self.run_cli(["--list-rules"])
        self.assertEqual(code, 0)
        for rule in mandilint.RULES:
            self.assertIn(rule, out, f"--list-rules must document {rule}")


class KernelFnoFastMath(MandilintCase):
    PIN = (
        "add_library(nn kernel.cpp)\n"
        "set_source_files_properties(kernel.cpp PROPERTIES\n"
        '  COMPILE_OPTIONS "-fno-fast-math")\n'
    )

    def test_marker_tu_without_cmake_pin_is_flagged(self) -> None:
        found = self.findings_for(
            "kernel-fno-fast-math",
            {"src/nn/kernel.cpp": "// mandilint: kernel-tu\n" + GUARD},
        )
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0].line, 1)
        self.assertIn("-fno-fast-math", found[0].message)

    def test_intrinsics_include_without_pin_is_flagged(self) -> None:
        for header in ("immintrin.h", "arm_neon.h"):
            found = self.findings_for(
                "kernel-fno-fast-math",
                {"src/nn/kernel.cpp": f"#include <{header}>\n" + GUARD},
            )
            self.assertEqual(len(found), 1, header)

    def test_pinned_kernel_tu_is_clean(self) -> None:
        found = self.findings_for(
            "kernel-fno-fast-math",
            {
                "src/nn/kernel.cpp": "// mandilint: kernel-tu\n" + GUARD,
                "src/nn/CMakeLists.txt": self.PIN,
            },
        )
        self.assertEqual(found, [])

    def test_pin_for_a_different_file_does_not_count(self) -> None:
        found = self.findings_for(
            "kernel-fno-fast-math",
            {
                "src/nn/other.cpp": "// mandilint: kernel-tu\n" + GUARD,
                "src/nn/CMakeLists.txt": self.PIN,
            },
        )
        self.assertEqual(len(found), 1)

    def test_pin_without_fno_fast_math_does_not_count(self) -> None:
        found = self.findings_for(
            "kernel-fno-fast-math",
            {
                "src/nn/kernel.cpp": "// mandilint: kernel-tu\n" + GUARD,
                "src/nn/CMakeLists.txt": (
                    "set_source_files_properties(kernel.cpp PROPERTIES\n"
                    '  COMPILE_OPTIONS "-funroll-loops")\n'
                ),
            },
        )
        self.assertEqual(len(found), 1)

    def test_non_kernel_tu_is_out_of_scope(self) -> None:
        found = self.findings_for(
            "kernel-fno-fast-math",
            {"src/nn/plain.cpp": GUARD + "int f() { return 1; }\n"},
        )
        self.assertEqual(found, [])

    def test_outside_src_is_out_of_scope(self) -> None:
        found = self.findings_for(
            "kernel-fno-fast-math",
            {"bench/kernel.cpp": "#include <immintrin.h>\nint main() {}\n"},
            subdirs=("bench",),
        )
        self.assertEqual(found, [])

    def test_file_waiver_suppresses(self) -> None:
        found = self.findings_for(
            "kernel-fno-fast-math",
            {
                "src/nn/kernel.cpp": (
                    "// mandilint: allow-file(kernel-fno-fast-math) -- perf probe TU\n"
                    "// mandilint: kernel-tu\n" + GUARD
                ),
            },
        )
        self.assertEqual(found, [])


if __name__ == "__main__":
    unittest.main(verbosity=2)

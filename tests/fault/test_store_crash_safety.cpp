// Crash safety of the template store's persisted state (DESIGN.md §12).
//
// The invariant under test: interrupt a save at *any* injected fault
// point and a subsequent load returns the previous or the new generation
// in full — never a corrupt store, never a partial one, and never
// silently-accepted garbage.
#include "auth/template_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/io.h"
#include "common/result.h"
#include "nn/serialize.h"

namespace mandipass::auth {
namespace {

StoredTemplate make_template(float fill, std::uint64_t seed, std::uint32_t version) {
  StoredTemplate t;
  t.data.assign(8, fill);
  t.matrix_seed = seed;
  t.key_version = version;
  return t;
}

/// Generation 1: alice only. Generation 2: alice re-keyed plus bob.
TemplateStore generation_one() {
  TemplateStore s;
  s.enroll("alice", make_template(1.0f, 7, 1));
  return s;
}

TemplateStore generation_two() {
  TemplateStore s;
  s.enroll("alice", make_template(2.0f, 9, 2));
  s.enroll("bob", make_template(-1.0f, 11, 1));
  return s;
}

/// True when `store` holds exactly generation 1 or exactly generation 2.
::testing::AssertionResult is_complete_generation(const TemplateStore& store) {
  const auto alice = store.lookup("alice");
  if (!alice.has_value()) {
    return ::testing::AssertionFailure() << "alice missing entirely";
  }
  if (alice->key_version == 1 && store.size() == 1) {
    return ::testing::AssertionSuccess() << "previous generation";
  }
  if (alice->key_version == 2 && store.size() == 2 && store.lookup("bob").has_value()) {
    return ::testing::AssertionSuccess() << "new generation";
  }
  return ::testing::AssertionFailure()
         << "mixed generations: alice v" << alice->key_version << ", size " << store.size();
}

class StoreCrashSafetyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/mandipass_store_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".bin";
    clean_disk();
  }

  void TearDown() override {
    common::disarm_io_fault();
    clean_disk();
  }

  void clean_disk() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
    std::remove((path_ + ".bak").c_str());
    std::remove((path_ + ".bak.tmp").c_str());
  }

  std::string path_;
};

// CRC framing: flip any single byte of a saved image and the load must
// fail loudly (and leave the in-memory store untouched) — never yield a
// matchable-but-wrong template.
TEST_F(StoreCrashSafetyTest, EveryByteFlipIsDetected) {
  const TemplateStore source = generation_two();
  std::ostringstream os(std::ios::binary);
  source.save(os);
  const std::string blob = os.str();
  ASSERT_GT(blob.size(), 0u);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string corrupt = blob;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xA5);
    TemplateStore target = generation_one();
    std::istringstream is(corrupt, std::ios::binary);
    const auto result = target.try_load(is);
    ASSERT_FALSE(result.ok()) << "byte " << i << " flip accepted";
    EXPECT_EQ(result.code(), common::ErrorCode::CorruptData) << "byte " << i;
    EXPECT_EQ(target.size(), 1u) << "store mutated by failed load at byte " << i;
    EXPECT_EQ(target.lookup("alice")->key_version, 1u);
  }
}

TEST_F(StoreCrashSafetyTest, SaveLoadFileRoundTrip) {
  const TemplateStore source = generation_two();
  ASSERT_TRUE(source.save_file(path_).ok());
  TemplateStore back;
  const auto report = back.load_file(path_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().source, LoadSource::Primary);
  EXPECT_FALSE(report.value().primary_corrupt);
  EXPECT_EQ(report.value().templates, 2u);
  EXPECT_TRUE(is_complete_generation(back));
  EXPECT_EQ(back.lookup("alice")->key_version, 2u);
}

// The kill test: re-seed the disk with generation 1, then attempt to save
// generation 2 with a write fault armed at every byte budget in turn, for
// every fault flavour. Whatever happens, a fresh load must come back with
// one complete generation.
TEST_F(StoreCrashSafetyTest, InterruptedSaveAtEveryFaultPointLeavesALoadableGeneration) {
  const TemplateStore gen1 = generation_one();
  const TemplateStore gen2 = generation_two();

  // Upper bound on bytes one save attempt pushes through write_exact:
  // serialize-to-memory + backup rotation + primary tmp write.
  std::ostringstream image_os(std::ios::binary);
  gen2.save(image_os);
  const std::size_t sweep_end = 3 * image_os.str().size() + 64;

  const common::IoFaultConfig::Kind kinds[] = {
      common::IoFaultConfig::Kind::ShortWrite,
      common::IoFaultConfig::Kind::TornWrite,
      common::IoFaultConfig::Kind::NoSpace,
  };
  for (const auto kind : kinds) {
    for (std::size_t fail_at = 0; fail_at < sweep_end; fail_at += 3) {
      clean_disk();
      ASSERT_TRUE(gen1.save_file(path_).ok());
      common::IoFaultConfig fault;
      fault.kind = kind;
      fault.fail_at_byte = fail_at;
      fault.failures = 1;
      common::arm_io_fault(fault);
      const auto saved = gen2.save_file(path_, /*max_retries=*/0);
      common::disarm_io_fault();

      TemplateStore loaded;
      const auto report = loaded.load_file(path_);
      ASSERT_TRUE(report.ok()) << "kind " << static_cast<int>(kind) << " fail_at " << fail_at
                               << ": " << report.error().message;
      EXPECT_TRUE(is_complete_generation(loaded))
          << "kind " << static_cast<int>(kind) << " fail_at " << fail_at;
      if (saved.ok()) {
        // A save that reported success must never roll back.
        EXPECT_EQ(loaded.lookup("alice")->key_version, 2u) << "fail_at " << fail_at;
      }
    }
  }
}

TEST_F(StoreCrashSafetyTest, TransientWriteErrorIsRetriedToSuccess) {
  const TemplateStore gen1 = generation_one();
  ASSERT_TRUE(gen1.save_file(path_).ok());
  common::IoFaultConfig fault;
  fault.kind = common::IoFaultConfig::Kind::TransientError;
  fault.fail_at_byte = 0;  // first write of the next attempt fails
  fault.failures = 2;      // two EIOs, then the disk recovers
  common::arm_io_fault(fault);
  const auto saved = generation_two().save_file(path_, /*max_retries=*/3);
  common::disarm_io_fault();
  ASSERT_TRUE(saved.ok()) << saved.error().message;
  TemplateStore loaded;
  ASSERT_TRUE(loaded.load_file(path_).ok());
  EXPECT_EQ(loaded.lookup("alice")->key_version, 2u);
}

TEST_F(StoreCrashSafetyTest, PersistentNoSpaceFailsFastAndKeepsPreviousGeneration) {
  ASSERT_TRUE(generation_one().save_file(path_).ok());
  common::IoFaultConfig fault;
  fault.kind = common::IoFaultConfig::Kind::NoSpace;
  fault.fail_at_byte = 0;
  fault.failures = 100;  // the volume stays full
  common::arm_io_fault(fault);
  const std::uint64_t fired_before = common::io_faults_fired();
  const auto saved = generation_two().save_file(path_, /*max_retries=*/3);
  common::disarm_io_fault();
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), common::ErrorCode::NoSpace);
  // ENOSPC is classified non-retryable: exactly one attempt.
  EXPECT_EQ(common::io_faults_fired() - fired_before, 1u);
  TemplateStore loaded;
  ASSERT_TRUE(loaded.load_file(path_).ok());
  EXPECT_EQ(loaded.lookup("alice")->key_version, 1u);
}

TEST_F(StoreCrashSafetyTest, CorruptPrimaryRecoversFromBackupAndSelfHeals) {
  ASSERT_TRUE(generation_one().save_file(path_).ok());
  ASSERT_TRUE(generation_two().save_file(path_).ok());  // rotates gen1 into .bak

  // Scribble over the middle of the primary.
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string bytes = ss.str();
    ASSERT_GT(bytes.size(), 10u);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    common::write_exact(out, bytes.data(), bytes.size(), "corrupted primary");
  }

  TemplateStore loaded;
  const auto report = loaded.load_file(path_);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report.value().source, LoadSource::Backup);
  EXPECT_TRUE(report.value().primary_corrupt);
  EXPECT_EQ(loaded.lookup("alice")->key_version, 1u);  // the backup generation

  // The recovery rewrote the primary: the next load is clean again.
  TemplateStore again;
  const auto second = again.load_file(path_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().source, LoadSource::Primary);
  EXPECT_FALSE(second.value().primary_corrupt);
  EXPECT_EQ(again.lookup("alice")->key_version, 1u);
}

TEST_F(StoreCrashSafetyTest, MissingFileReturnsIoError) {
  TemplateStore store;
  const auto report = store.load_file(path_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.code(), common::ErrorCode::IoError);
}

TEST_F(StoreCrashSafetyTest, LegacyV1StreamStillLoads) {
  // A V1 image has no CRC framing but must keep loading (deployed stores
  // predate the V2 format).
  std::stringstream ss;
  nn::write_tag(ss, "MANDIPASS-STORE-V1");
  nn::write_u64(ss, 1);  // one record
  nn::write_tag(ss, "legacy");
  nn::write_u64(ss, 5);  // matrix_seed
  nn::write_u64(ss, 3);  // key_version
  const std::vector<float> data(8, 0.5f);
  nn::write_u64(ss, data.size());
  common::write_exact(ss, data.data(), data.size() * sizeof(float), "template data");
  TemplateStore store;
  const auto result = store.try_load(ss);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.lookup("legacy")->matrix_seed, 5u);
  EXPECT_EQ(store.lookup("legacy")->key_version, 3u);
}

}  // namespace
}  // namespace mandipass::auth

#include "imu/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "vibration/population.h"
#include "vibration/session.h"

namespace mandipass::imu {
namespace {

bool recordings_equal(const RawRecording& a, const RawRecording& b) {
  if (a.sample_rate_hz != b.sample_rate_hz || a.sample_count() != b.sample_count()) {
    return false;
  }
  for (std::size_t axis = 0; axis < kAxisCount; ++axis) {
    if (a.axes[axis].size() != b.axes[axis].size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.axes[axis].size(); ++i) {
      const double x = a.axes[axis][i];
      const double y = b.axes[axis][i];
      // NaN-aware equality: injected NaNs must compare as "same fault".
      if (x != y && !(std::isnan(x) && std::isnan(y))) {
        return false;
      }
    }
  }
  return true;
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : rng_(7), pop_(2024) {}

  RawRecording record_one() {
    vibration::SessionRecorder rec(pop_.sample(), rng_);
    return rec.record(vibration::SessionConfig{});
  }

  Rng rng_;
  vibration::PopulationGenerator pop_;
};

TEST_F(FaultInjectorTest, SameSeedSameFaultIsBitIdentical) {
  const auto rec = record_one();
  const FaultInjector a(42);
  const FaultInjector b(42);
  for (const FaultKind kind : kAllFaultKinds) {
    const FaultSpec spec{kind, 0.5};
    EXPECT_TRUE(recordings_equal(a.apply(rec, spec), b.apply(rec, spec)))
        << fault_kind_name(kind);
    // Repeated calls on one injector must not advance hidden state.
    EXPECT_TRUE(recordings_equal(a.apply(rec, spec), a.apply(rec, spec)))
        << fault_kind_name(kind);
  }
}

TEST_F(FaultInjectorTest, DifferentSeedsProduceDifferentStreams) {
  const auto rec = record_one();
  const FaultInjector a(1);
  const FaultInjector b(2);
  bool any_differ = false;
  for (const FaultKind kind : kAllFaultKinds) {
    const FaultSpec spec{kind, 0.5};
    if (!recordings_equal(a.apply(rec, spec), b.apply(rec, spec))) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST_F(FaultInjectorTest, SeverityZeroIsIdentityForEveryKind) {
  const auto rec = record_one();
  const FaultInjector injector(99);
  for (const FaultKind kind : kAllFaultKinds) {
    const FaultSpec spec{kind, 0.0};
    EXPECT_TRUE(recordings_equal(injector.apply(rec, spec), rec)) << fault_kind_name(kind);
  }
}

TEST_F(FaultInjectorTest, FramesStayAlignedAcrossAllKinds) {
  const auto rec = record_one();
  const FaultInjector injector(7);
  for (const FaultKind kind : kAllFaultKinds) {
    const auto faulty = injector.apply(rec, {kind, 0.7});
    EXPECT_DOUBLE_EQ(faulty.sample_rate_hz, rec.sample_rate_hz);
    for (std::size_t a = 0; a < kAxisCount; ++a) {
      EXPECT_EQ(faulty.axes[a].size(), faulty.sample_count())
          << fault_kind_name(kind) << " left ragged axes";
    }
  }
}

TEST_F(FaultInjectorTest, DropShrinksAndDuplicateGrowsTheStream) {
  const auto rec = record_one();
  const FaultInjector injector(5);
  const auto dropped = injector.apply(rec, {FaultKind::SampleDrop, 0.5});
  const auto doubled = injector.apply(rec, {FaultKind::SampleDuplicate, 0.5});
  EXPECT_LT(dropped.sample_count(), rec.sample_count());
  EXPECT_GT(doubled.sample_count(), rec.sample_count());
}

TEST_F(FaultInjectorTest, SaturationClipsWithinFullScale) {
  const auto rec = record_one();
  const FaultInjector injector(5);
  const double full_scale = 1000.0;  // far below the session's dynamic range
  const auto clipped = injector.apply(rec, {FaultKind::Saturation, 1.0, full_scale});
  std::size_t pinned = 0;
  for (const auto& axis : clipped.axes) {
    for (double v : axis) {
      ASSERT_LE(std::abs(v), full_scale);
      pinned += std::abs(v) == full_scale ? 1 : 0;
    }
  }
  EXPECT_GT(pinned, 0u);  // severity 1 must actually pin samples
}

TEST_F(FaultInjectorTest, NonFiniteBurstHitsExactlyOneAxis) {
  const auto rec = record_one();
  const FaultInjector injector(5);
  const auto faulty = injector.apply(rec, {FaultKind::NonFiniteBurst, 0.5});
  std::size_t axes_with_nonfinite = 0;
  for (const auto& axis : faulty.axes) {
    const bool any = std::any_of(axis.begin(), axis.end(),
                                 [](double v) { return !std::isfinite(v); });
    axes_with_nonfinite += any ? 1 : 0;
  }
  EXPECT_EQ(axes_with_nonfinite, 1u);
}

TEST_F(FaultInjectorTest, StuckAxisHoldsOneValueForALongRun) {
  const auto rec = record_one();
  const FaultInjector injector(5);
  const auto faulty = injector.apply(rec, {FaultKind::StuckAxis, 0.5});
  std::size_t longest_run = 0;
  for (const auto& axis : faulty.axes) {
    std::size_t run = 1;
    for (std::size_t i = 1; i < axis.size(); ++i) {
      run = axis[i] == axis[i - 1] ? run + 1 : 1;
      longest_run = std::max(longest_run, run);
    }
  }
  EXPECT_GE(longest_run, rec.sample_count() / 2);
}

TEST_F(FaultInjectorTest, JitterPermutesButPreservesValues) {
  const auto rec = record_one();
  const FaultInjector injector(5);
  const auto faulty = injector.apply(rec, {FaultKind::TimestampJitter, 1.0});
  ASSERT_EQ(faulty.sample_count(), rec.sample_count());
  EXPECT_FALSE(recordings_equal(faulty, rec));
  for (std::size_t a = 0; a < kAxisCount; ++a) {
    auto got = faulty.axes[a];
    auto want = rec.axes[a];
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "axis " << a << " lost or invented samples";
  }
}

TEST_F(FaultInjectorTest, BiasDriftRampsFromZero) {
  const auto rec = record_one();
  const FaultInjector injector(5);
  const auto faulty = injector.apply(rec, {FaultKind::BiasDrift, 1.0});
  ASSERT_EQ(faulty.sample_count(), rec.sample_count());
  for (std::size_t a = 0; a < kAxisCount; ++a) {
    // The ramp is zero at the first sample and largest at the last.
    EXPECT_DOUBLE_EQ(faulty.axes[a][0], rec.axes[a][0]);
  }
  const std::size_t last = rec.sample_count() - 1;
  bool any_shifted = false;
  for (std::size_t a = 0; a < kAxisCount; ++a) {
    any_shifted = any_shifted || faulty.axes[a][last] != rec.axes[a][last];
  }
  EXPECT_TRUE(any_shifted);
}

TEST_F(FaultInjectorTest, ApplyAllComposesInOrder) {
  const auto rec = record_one();
  const FaultInjector injector(11);
  const FaultSpec specs[] = {{FaultKind::SampleDrop, 0.3}, {FaultKind::BiasDrift, 0.8}};
  const auto composed = injector.apply_all(rec, specs);
  // apply_all salts step k with spec.salt + k, so the manual equivalent
  // of the second step carries salt 1.
  FaultSpec second = specs[1];
  second.salt = 1;
  const auto manual = injector.apply(injector.apply(rec, specs[0]), second);
  EXPECT_TRUE(recordings_equal(composed, manual));
}

TEST_F(FaultInjectorTest, SingleSpecCompoundMatchesBareApply) {
  const auto rec = record_one();
  const FaultInjector injector(11);
  const FaultSpec spec{FaultKind::StuckAxis, 0.4};
  const FaultSpec specs[] = {spec};
  EXPECT_TRUE(recordings_equal(injector.apply_all(rec, specs), injector.apply(rec, spec)));
}

TEST_F(FaultInjectorTest, RepeatedSameKindSpecsDrawDistinctStreams) {
  const auto rec = record_one();
  const FaultInjector injector(11);
  // Before per-position salting, both StuckAxis steps replayed the same
  // (seed, kind) stream: same axis, same span, so the compound was
  // indistinguishable from a single injection. The salted steps must
  // pick independently.
  const FaultSpec spec{FaultKind::StuckAxis, 0.3};
  const FaultSpec twice[] = {spec, spec};
  const auto composed = injector.apply_all(rec, twice);
  const auto replayed = injector.apply(injector.apply(rec, spec), spec);
  EXPECT_FALSE(recordings_equal(composed, replayed));
}

TEST_F(FaultInjectorTest, SaltDecorrelatesEqualSpecs) {
  const auto rec = record_one();
  const FaultInjector injector(21);
  FaultSpec a{FaultKind::NonFiniteBurst, 0.5};
  FaultSpec b = a;
  b.salt = 1;
  EXPECT_FALSE(recordings_equal(injector.apply(rec, a), injector.apply(rec, b)));
  // Equal salts reproduce exactly.
  EXPECT_TRUE(recordings_equal(injector.apply(rec, b), injector.apply(rec, b)));
}

TEST_F(FaultInjectorTest, CrossDeviceGainIsPerAxisAffine) {
  const auto rec = record_one();
  const FaultInjector injector(31);
  // Huge full scale: no clipping, so the transform must be exactly
  // v -> gain * v + bias per axis.
  const auto faulty = injector.apply(rec, {FaultKind::CrossDeviceGain, 1.0, 1e12});
  ASSERT_EQ(faulty.sample_count(), rec.sample_count());
  std::vector<double> gains;
  for (std::size_t a = 0; a < kAxisCount; ++a) {
    // Solve gain/bias from two samples with distinct values, then check
    // every sample against the affine model.
    const auto& in = rec.axes[a];
    const auto& out = faulty.axes[a];
    std::size_t j = 1;
    while (j < in.size() && in[j] == in[0]) ++j;
    ASSERT_LT(j, in.size()) << "axis " << a << " constant; test needs motion";
    const double gain = (out[j] - out[0]) / (in[j] - in[0]);
    const double bias = out[0] - gain * in[0];
    for (std::size_t i = 0; i < in.size(); ++i) {
      ASSERT_NEAR(out[i], gain * in[i] + bias, 1e-6) << "axis " << a;
    }
    // Severity-1 bounds: gain in [0.7, 1.3], bias in [-400, 400].
    EXPECT_GE(gain, 0.7);
    EXPECT_LE(gain, 1.3);
    EXPECT_GE(bias, -400.0);
    EXPECT_LE(bias, 400.0);
    gains.push_back(gain);
  }
  // Axes must be miscalibrated independently, not by one shared factor.
  std::sort(gains.begin(), gains.end());
  EXPECT_GT(gains.back() - gains.front(), 1e-3);
}

TEST_F(FaultInjectorTest, CrossDeviceGainSeedStableAndClipped) {
  const auto rec = record_one();
  const FaultInjector a(77);
  const FaultInjector b(77);
  const FaultInjector c(78);
  const FaultSpec spec{FaultKind::CrossDeviceGain, 0.8};
  EXPECT_TRUE(recordings_equal(a.apply(rec, spec), b.apply(rec, spec)));
  EXPECT_FALSE(recordings_equal(a.apply(rec, spec), c.apply(rec, spec)));
  // Output respects the configured full scale even when gain/bias push
  // samples past it.
  const double full_scale = 500.0;
  const auto clipped = a.apply(rec, {FaultKind::CrossDeviceGain, 1.0, full_scale});
  for (const auto& axis : clipped.axes) {
    for (double v : axis) {
      ASSERT_LE(std::abs(v), full_scale);
    }
  }
}

TEST_F(FaultInjectorTest, SaturationSeverityScalesPinnedFraction) {
  const auto rec = record_one();
  const FaultInjector injector(5);
  const double full_scale = 1000.0;
  const auto count_pinned = [&](double severity) {
    const auto clipped = injector.apply(rec, {FaultKind::Saturation, severity, full_scale});
    std::size_t pinned = 0;
    for (const auto& axis : clipped.axes) {
      for (double v : axis) pinned += std::abs(v) == full_scale ? 1 : 0;
    }
    return pinned;
  };
  // More drive, more clipping — and the injection is draw-free, so two
  // injectors agree regardless of seed.
  EXPECT_LE(count_pinned(0.3), count_pinned(1.0));
  const FaultInjector other(999);
  EXPECT_TRUE(recordings_equal(
      injector.apply(rec, {FaultKind::Saturation, 0.6, full_scale}),
      other.apply(rec, {FaultKind::Saturation, 0.6, full_scale})));
}

}  // namespace
}  // namespace mandipass::imu

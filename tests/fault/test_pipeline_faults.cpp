// Graceful degradation of the authentication pipeline under injected IMU
// faults (DESIGN.md §12): every degraded capture must come back from the
// typed APIs as a structured reject reason — never an exception — and
// every reject must be visible in the fault.reject.* obs counters.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/obs.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/preprocessor.h"
#include "imu/fault_injector.h"
#include "vibration/population.h"
#include "vibration/session.h"

namespace mandipass::core {
namespace {

class PipelineFaultTest : public ::testing::Test {
 protected:
  PipelineFaultTest() : rng_(7), pop_(2024) {}

  imu::RawRecording record_one() {
    vibration::SessionRecorder rec(pop_.sample(), rng_);
    return rec.record(vibration::SessionConfig{});
  }

  Rng rng_;
  vibration::PopulationGenerator pop_;
};

// The sweep at the heart of the robustness story: every fault kind at
// every severity either yields a usable signal array or a typed reject —
// try_process must be total over whatever the injector produces.
TEST_F(PipelineFaultTest, EveryFaultKindAndSeverityYieldsTypedOutcome) {
  const Preprocessor prep;
  const imu::FaultInjector injector(1234);
  const auto clean = record_one();
  for (const imu::FaultKind kind : imu::kAllFaultKinds) {
    for (const double severity : {0.1, 0.25, 0.5, 0.75, 1.0}) {
      const auto faulty = injector.apply(clean, {kind, severity});
      common::Result<SignalArray> result = prep.try_process(faulty);
      if (!result.ok()) {
        EXPECT_FALSE(result.error().message.empty())
            << imu::fault_kind_name(kind) << " @ " << severity;
        // The reason must come from the documented taxonomy for this path.
        const auto code = result.code();
        EXPECT_TRUE(code == common::ErrorCode::InvalidInput ||
                    code == common::ErrorCode::SegmentTooShort ||
                    code == common::ErrorCode::OnsetNotFound ||
                    code == common::ErrorCode::SensorSaturated ||
                    code == common::ErrorCode::NonFiniteSample)
            << imu::fault_kind_name(kind) << " @ " << severity << " gave "
            << common::error_code_name(code);
      }
    }
  }
}

TEST_F(PipelineFaultTest, NaNBurstInsideSegmentIsTypedNonFiniteReject) {
  const Preprocessor prep;
  auto rec = record_one();
  const auto onset = prep.detect_onset(rec);
  ASSERT_TRUE(onset.has_value());
  // Poison samples across the whole vibration segment on one axis, so the
  // segment the pipeline picks covers at least one of them no matter how
  // the NaNs shift the detected onset.
  for (std::size_t k = 0; k < kDefaultSegmentLength && *onset + k < rec.sample_count(); k += 3) {
    rec.axes[0][*onset + k] = std::numeric_limits<double>::quiet_NaN();
  }
  const auto result = prep.try_process(rec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), common::ErrorCode::NonFiniteSample);
}

TEST_F(PipelineFaultTest, AllNaNRecordingIsTypedNonFiniteReject) {
  const Preprocessor prep;
  auto rec = record_one();
  for (auto& axis : rec.axes) {
    for (double& v : axis) {
      v = std::numeric_limits<double>::quiet_NaN();
    }
  }
  const auto result = prep.try_process(rec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), common::ErrorCode::NonFiniteSample);
}

TEST_F(PipelineFaultTest, PinnedRecordingIsTypedSaturationReject) {
  const Preprocessor prep;
  auto rec = record_one();
  for (auto& axis : rec.axes) {
    for (double& v : axis) {
      v = 32767.0;  // every axis pinned at full scale: no onset, all clipped
    }
  }
  const auto result = prep.try_process(rec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), common::ErrorCode::SensorSaturated);
}

TEST_F(PipelineFaultTest, QuietRecordingIsTypedOnsetReject) {
  const Preprocessor prep;
  imu::RawRecording rec;
  rec.sample_rate_hz = 350.0;
  for (auto& axis : rec.axes) {
    axis.assign(256, 100.0);  // flat gravity offset, no vibration
  }
  const auto result = prep.try_process(rec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), common::ErrorCode::OnsetNotFound);
}

TEST_F(PipelineFaultTest, StructuralFaultsAreTypedInvalidInput) {
  const Preprocessor prep;
  auto ragged = record_one();
  ragged.axes[3].pop_back();
  EXPECT_EQ(prep.try_process(ragged).code(), common::ErrorCode::InvalidInput);

  auto bad_rate = record_one();
  bad_rate.sample_rate_hz = 0.0;
  EXPECT_EQ(prep.try_process(bad_rate).code(), common::ErrorCode::InvalidInput);

  auto short_rec = record_one();
  for (auto& axis : short_rec.axes) {
    axis.resize(10);
  }
  EXPECT_EQ(prep.try_process(short_rec).code(), common::ErrorCode::SegmentTooShort);
}

#ifndef MANDIPASS_NO_OBS
TEST_F(PipelineFaultTest, RejectsIncrementTheirTaxonomyCounter) {
  const Preprocessor prep;
  auto rec = record_one();
  rec.axes[2][0] = std::numeric_limits<double>::quiet_NaN();
  const auto onset = prep.detect_onset(rec);
  ASSERT_TRUE(onset.has_value());
  rec.axes[2][*onset + 3] = std::numeric_limits<double>::quiet_NaN();

  const auto counter_name = common::reject_counter_name(common::ErrorCode::NonFiniteSample);
  const std::uint64_t before = common::obs::counter(counter_name).value();
  const auto result = prep.try_process(rec);
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(result.code(), common::ErrorCode::NonFiniteSample);
  EXPECT_EQ(common::obs::counter(counter_name).value(), before + 1);
}

TEST_F(PipelineFaultTest, CleanCaptureIncrementsNoRejectCounter) {
  const Preprocessor prep;
  const auto rec = record_one();
  std::uint64_t before = 0;
  using common::ErrorCode;
  const ErrorCode all_codes[] = {
      ErrorCode::InvalidInput,   ErrorCode::SegmentTooShort,  ErrorCode::OnsetNotFound,
      ErrorCode::SensorSaturated, ErrorCode::NonFiniteSample, ErrorCode::UnknownUser,
      ErrorCode::DimensionMismatch, ErrorCode::IoError, ErrorCode::NoSpace,
      ErrorCode::CorruptData,
  };
  for (const auto code : all_codes) {
    before += common::obs::counter(common::reject_counter_name(code)).value();
  }
  ASSERT_TRUE(prep.try_process(rec).ok());
  std::uint64_t after = 0;
  for (const auto code : all_codes) {
    after += common::obs::counter(common::reject_counter_name(code)).value();
  }
  EXPECT_EQ(after, before);
}
#endif  // MANDIPASS_NO_OBS

}  // namespace
}  // namespace mandipass::core

#include "dsp/filter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.h"
#include "common/stats.h"

namespace mandipass::dsp {
namespace {

std::vector<double> sine(double freq, double fs, std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = std::sin(2.0 * std::numbers::pi * freq * static_cast<double>(i) / fs);
  }
  return xs;
}

double steady_state_rms(const std::vector<double>& xs) {
  // Skip the first half (filter transient).
  double acc = 0.0;
  const std::size_t start = xs.size() / 2;
  for (std::size_t i = start; i < xs.size(); ++i) {
    acc += xs[i] * xs[i];
  }
  return std::sqrt(acc / static_cast<double>(xs.size() - start));
}

TEST(Butterworth, HighpassPassesHighFrequency) {
  auto hp = SosFilter::butterworth_highpass4(20.0, 350.0);
  const auto out = hp.filter(sine(100.0, 350.0, 2000));
  EXPECT_NEAR(steady_state_rms(out), 1.0 / std::sqrt(2.0), 0.03);
}

TEST(Butterworth, HighpassRejectsLowFrequency) {
  auto hp = SosFilter::butterworth_highpass4(20.0, 350.0);
  const auto out = hp.filter(sine(2.0, 350.0, 4000));
  // 4th order, one decade below cutoff: ~80 dB attenuation expected; allow
  // a generous margin.
  EXPECT_LT(steady_state_rms(out), 0.01);
}

TEST(Butterworth, HighpassCutoffIsMinus3dB) {
  auto hp = SosFilter::butterworth_highpass4(20.0, 350.0);
  EXPECT_NEAR(hp.magnitude_at(20.0, 350.0), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(Butterworth, HighpassMonotoneStopband) {
  auto hp = SosFilter::butterworth_highpass4(20.0, 350.0);
  double prev = 0.0;
  for (double f = 1.0; f <= 20.0; f += 1.0) {
    const double mag = hp.magnitude_at(f, 350.0);
    EXPECT_GE(mag, prev - 1e-9) << "not monotone at " << f;
    prev = mag;
  }
}

TEST(Butterworth, LowpassMirrorsHighpass) {
  auto lp = SosFilter::butterworth_lowpass4(50.0, 1000.0);
  EXPECT_NEAR(lp.magnitude_at(50.0, 1000.0), 1.0 / std::sqrt(2.0), 0.02);
  EXPECT_GT(lp.magnitude_at(5.0, 1000.0), 0.99);
  EXPECT_LT(lp.magnitude_at(400.0, 1000.0), 1e-3);
}

TEST(Butterworth, RemovesDcCompletely) {
  auto hp = SosFilter::butterworth_highpass4(20.0, 350.0);
  std::vector<double> dc(1000, 5.0);
  const auto out = hp.filter(dc);
  EXPECT_LT(std::abs(out.back()), 1e-6);
}

TEST(Biquad, ResetClearsState) {
  auto c = design_highpass_biquad(20.0, 350.0, 0.707);
  Biquad b(c);
  b.process(1.0);
  b.process(-1.0);
  b.reset();
  // After reset, the impulse response must match a fresh filter.
  Biquad fresh(c);
  for (int i = 0; i < 10; ++i) {
    const double x = i == 0 ? 1.0 : 0.0;
    EXPECT_DOUBLE_EQ(b.process(x), fresh.process(x));
  }
}

TEST(SosFilter, FilterResetsBetweenSegments) {
  auto hp = SosFilter::butterworth_highpass4(20.0, 350.0);
  const auto first = hp.filter(sine(60.0, 350.0, 100));
  const auto second = hp.filter(sine(60.0, 350.0, 100));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]);
  }
}

TEST(FilterDesign, InvalidParametersThrow) {
  EXPECT_THROW(design_highpass_biquad(0.0, 350.0, 0.7), PreconditionError);
  EXPECT_THROW(design_highpass_biquad(200.0, 350.0, 0.7), PreconditionError);
  EXPECT_THROW(design_highpass_biquad(20.0, 350.0, 0.0), PreconditionError);
  EXPECT_THROW(design_lowpass_biquad(0.0, 350.0, 0.7), PreconditionError);
  EXPECT_THROW(SosFilter({}), PreconditionError);
}

TEST(SosFilter, SectionCount) {
  auto hp = SosFilter::butterworth_highpass4(20.0, 350.0);
  EXPECT_EQ(hp.section_count(), 2u);  // 4th order = 2 biquads
}

}  // namespace
}  // namespace mandipass::dsp

#include "dsp/resample.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/stats.h"

namespace mandipass::dsp {
namespace {

TEST(Decimate, OutputLengthScales) {
  std::vector<double> xs(8000, 0.0);
  const auto out = decimate(xs, 8000.0, 350.0);
  EXPECT_EQ(out.size(), 350u);
}

TEST(Decimate, SameRatePassthrough) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  const auto out = decimate(xs, 100.0, 100.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(Decimate, PreservesInBandTone) {
  // 50 Hz tone sampled at 8 kHz decimated to 350 Hz stays ~unit RMS.
  std::vector<double> xs(16000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(2.0 * std::numbers::pi * 50.0 * static_cast<double>(i) / 8000.0);
  }
  const auto out = decimate(xs, 8000.0, 350.0);
  std::vector<double> tail(out.begin() + static_cast<std::ptrdiff_t>(out.size() / 2), out.end());
  EXPECT_NEAR(stddev(tail), 1.0 / std::sqrt(2.0), 0.05);
}

TEST(Decimate, SuppressesOutOfBandTone) {
  // 1 kHz tone is far above the 350 Hz output Nyquist; the anti-alias
  // filter must kill it.
  std::vector<double> xs(16000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(2.0 * std::numbers::pi * 1000.0 * static_cast<double>(i) / 8000.0);
  }
  const auto out = decimate(xs, 8000.0, 350.0);
  std::vector<double> tail(out.begin() + static_cast<std::ptrdiff_t>(out.size() / 2), out.end());
  EXPECT_LT(stddev(tail), 0.02);
}

TEST(Decimate, EmptyInput) {
  EXPECT_TRUE(decimate(std::vector<double>{}, 8000.0, 350.0).empty());
}

TEST(Decimate, InvalidRatesThrow) {
  std::vector<double> xs(10, 0.0);
  EXPECT_THROW(decimate(xs, 100.0, 200.0), PreconditionError);
  EXPECT_THROW(decimate(xs, 100.0, 0.0), PreconditionError);
}

}  // namespace
}  // namespace mandipass::dsp

#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace mandipass::dsp {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> xs(8, 0.0);
  xs[0] = 1.0;
  fft_inplace(xs);
  for (const auto& x : xs) {
    EXPECT_NEAR(std::abs(x), 1.0, 1e-12);
  }
}

TEST(Fft, DcBin) {
  std::vector<std::complex<double>> xs(8, 1.0);
  fft_inplace(xs);
  EXPECT_NEAR(xs[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) {
    EXPECT_NEAR(std::abs(xs[k]), 0.0, 1e-12);
  }
}

TEST(Fft, SineLandsInCorrectBin) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> xs(n);
  const std::size_t bin = 5;
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(bin * i) / n);
  }
  fft_inplace(xs);
  EXPECT_NEAR(std::abs(xs[bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(xs[n - bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(xs[bin + 1]), 0.0, 1e-9);
}

TEST(Fft, RoundTrip) {
  std::vector<std::complex<double>> xs(32);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = {std::sin(0.3 * static_cast<double>(i)), std::cos(0.7 * static_cast<double>(i))};
  }
  auto copy = xs;
  fft_inplace(copy);
  ifft_inplace(copy);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), xs[i].real(), 1e-10);
    EXPECT_NEAR(copy[i].imag(), xs[i].imag(), 1e-10);
  }
}

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<std::complex<double>> xs(12, 0.0);
  EXPECT_THROW(fft_inplace(xs), PreconditionError);
}

TEST(Fft, RealInputZeroPadded) {
  const std::vector<double> xs{1.0, 2.0, 3.0};  // padded to 4
  const auto spec = fft_real(xs);
  EXPECT_EQ(spec.size(), 4u);
  EXPECT_NEAR(spec[0].real(), 6.0, 1e-12);
}

TEST(Fft, MagnitudeSpectrumOneSided) {
  std::vector<double> xs(16, 0.0);
  const auto mag = magnitude_spectrum(xs);
  EXPECT_EQ(mag.size(), 9u);  // N/2 + 1
}

TEST(Fft, PowerSpectrumParseval) {
  // Parseval: sum |x|^2 == sum |X|^2 / N. Use the two-sided identity via
  // the one-sided spectrum of a real signal.
  std::vector<double> xs(32);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::cos(2.0 * std::numbers::pi * 3.0 * static_cast<double>(i) / 32.0);
  }
  double time_energy = 0.0;
  for (double x : xs) {
    time_energy += x * x;
  }
  const auto spec = fft_real(xs);
  double freq_energy = 0.0;
  for (const auto& s : spec) {
    freq_energy += std::norm(s);
  }
  EXPECT_NEAR(time_energy, freq_energy / static_cast<double>(spec.size()), 1e-9);
}

TEST(Fft, BinFrequency) {
  EXPECT_DOUBLE_EQ(bin_frequency(0, 64, 350.0), 0.0);
  EXPECT_DOUBLE_EQ(bin_frequency(32, 64, 350.0), 175.0);
}

TEST(Fft, DominantBinFindsPeak) {
  std::vector<double> mag{10.0, 1.0, 5.0, 9.0, 2.0};
  EXPECT_EQ(dominant_bin(mag), 3u);  // DC (bin 0) excluded
}

}  // namespace
}  // namespace mandipass::dsp

#include "dsp/gradient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mandipass::dsp {
namespace {

TEST(Gradients, ForwardDifference) {
  const std::vector<double> xs{1.0, 3.0, 2.0, 2.0};
  const auto g = gradients(xs);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[1], -1.0);
  EXPECT_DOUBLE_EQ(g[2], 0.0);
}

TEST(Gradients, TooShortThrows) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(gradients(xs), PreconditionError);
}

TEST(SplitBySign, ZeroGoesPositive) {
  // Paper: "gradients that are larger than or equal to zero belong to the
  // positive direction".
  const std::vector<double> g{1.0, 0.0, -2.0, 3.0};
  const auto s = split_by_sign(g);
  ASSERT_EQ(s.positive.size(), 3u);
  ASSERT_EQ(s.negative.size(), 1u);
  EXPECT_DOUBLE_EQ(s.positive[1], 0.0);
  EXPECT_DOUBLE_EQ(s.negative[0], -2.0);
}

TEST(SplitBySign, PreservesOrder) {
  const std::vector<double> g{3.0, -1.0, 1.0, -2.0};
  const auto s = split_by_sign(g);
  EXPECT_DOUBLE_EQ(s.positive[0], 3.0);
  EXPECT_DOUBLE_EQ(s.positive[1], 1.0);
  EXPECT_DOUBLE_EQ(s.negative[0], -1.0);
  EXPECT_DOUBLE_EQ(s.negative[1], -2.0);
}

TEST(ResampleLinear, IdentityWhenSameLength) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto out = resample_linear(xs, 3);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(out[i], xs[i]);
  }
}

TEST(ResampleLinear, UpsampleInterpolates) {
  const std::vector<double> xs{0.0, 2.0};
  const auto out = resample_linear(xs, 5);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
  EXPECT_DOUBLE_EQ(out[4], 2.0);
}

TEST(ResampleLinear, DownsampleKeepsEndpoints) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const auto out = resample_linear(xs, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
}

TEST(ResampleLinear, EmptyGivesZeros) {
  const std::vector<double> xs;
  const auto out = resample_linear(xs, 4);
  ASSERT_EQ(out.size(), 4u);
  for (double v : out) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(ResampleLinear, SingleBroadcast) {
  const std::vector<double> xs{7.0};
  const auto out = resample_linear(xs, 3);
  for (double v : out) {
    EXPECT_DOUBLE_EQ(v, 7.0);
  }
}

TEST(ResampleLinear, TargetOneTakesFirst) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  const auto out = resample_linear(xs, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 9.0);
}

TEST(DirectionGradients, ShapesConsistent) {
  std::vector<double> xs(60);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(0.4 * static_cast<double>(i));
  }
  const auto d = direction_gradients(xs, 30);
  EXPECT_EQ(d.positive.size(), 30u);
  EXPECT_EQ(d.negative.size(), 30u);
}

TEST(DirectionGradients, MonotoneSignalHasEmptyNegativeSide) {
  std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  const auto d = direction_gradients(xs, 4);
  // All gradients positive; the negative side is the zero-fill of an
  // empty split.
  for (double v : d.negative) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
  for (double v : d.positive) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

}  // namespace
}  // namespace mandipass::dsp

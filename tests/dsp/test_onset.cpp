#include "dsp/onset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::dsp {
namespace {

/// Quiet noise followed by a strong oscillation from `start`.
std::vector<double> synthetic(std::size_t n, std::size_t start, double quiet_sigma,
                              double loud_amp, Rng& rng) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.normal(0.0, quiet_sigma);
    if (i >= start) {
      xs[i] += loud_amp * std::sin(0.9 * static_cast<double>(i));
    }
  }
  return xs;
}

TEST(Onset, DetectsAtWindowBoundary) {
  Rng rng(1);
  const auto xs = synthetic(300, 100, 20.0, 800.0, rng);
  const auto onset = detect_onset(xs);
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(*onset, 100u);  // start is window-aligned (stride 10)
}

TEST(Onset, QuantisedToStride) {
  Rng rng(2);
  const auto xs = synthetic(300, 104, 20.0, 800.0, rng);
  const auto onset = detect_onset(xs);
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(*onset % 10, 0u);
  EXPECT_GE(*onset, 90u);
  EXPECT_LE(*onset, 110u);
}

TEST(Onset, NoVibrationReturnsNullopt) {
  Rng rng(3);
  const auto xs = synthetic(300, 300, 20.0, 0.0, rng);  // never starts
  EXPECT_FALSE(detect_onset(xs).has_value());
}

TEST(Onset, IgnoresShortSpike) {
  Rng rng(4);
  std::vector<double> xs(300);
  for (auto& x : xs) {
    x = rng.normal(0.0, 10.0);
  }
  // One isolated glitch window (high std) that does not sustain.
  for (std::size_t i = 100; i < 110; ++i) {
    xs[i] += (i % 2 == 0 ? 2000.0 : -2000.0);
  }
  EXPECT_FALSE(detect_onset(xs).has_value());
}

TEST(Onset, SustainedVibrationAccepted) {
  Rng rng(5);
  const auto xs = synthetic(400, 200, 5.0, 500.0, rng);
  const auto onset = detect_onset(xs);
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(*onset, 200u);
}

TEST(Onset, EmptyInput) {
  EXPECT_FALSE(detect_onset(std::vector<double>{}).has_value());
}

TEST(Onset, ConfigValidation) {
  OnsetConfig bad;
  bad.window = 0;
  EXPECT_THROW(detect_onset(std::vector<double>(100, 0.0), bad), PreconditionError);
  OnsetConfig inverted;
  inverted.start_threshold = 50.0;
  inverted.sustain_threshold = 100.0;
  EXPECT_THROW(detect_onset(std::vector<double>(100, 0.0), inverted), PreconditionError);
}

TEST(Onset, AllFlatStreamHasNoOnset) {
  // A constant (earphone on a table) has zero std-dev in every window —
  // the no-onset path, and never an out-of-bounds window read.
  const std::vector<double> flat(300, 1234.0);
  EXPECT_FALSE(detect_onset(flat).has_value());
  EXPECT_FALSE(segment_after_onset(flat, flat, 60).has_value());
}

TEST(Onset, AllSaturatedStreamOnsetAtStart) {
  // Rail-to-rail clipping (±32767 LSB alternating) keeps every window's
  // std-dev far above both thresholds: the onset is the first window and
  // a full-span segment is available.
  std::vector<double> sat(300);
  for (std::size_t i = 0; i < sat.size(); ++i) {
    sat[i] = i % 2 == 0 ? 32767.0 : -32767.0;
  }
  const auto onset = detect_onset(sat);
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(*onset, 0u);
  const auto seg = segment_after_onset(sat, sat, sat.size());
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->size(), sat.size());
}

TEST(Onset, OnsetInFinalWindowDetectedWithoutOverrun) {
  // Vibration starting in the very last window: the sustain check must
  // clamp at the end of the stream instead of reading past it, and the
  // short remainder then fails segmentation, not detection.
  Rng rng(8);
  const std::size_t n = 300;
  auto xs = synthetic(n, n, 5.0, 0.0, rng);  // quiet everywhere...
  for (std::size_t i = n - 10; i < n; ++i) { // ...except the final window
    xs[i] = (i % 2 == 0 ? 3000.0 : -3000.0);
  }
  const auto onset = detect_onset(xs);
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(*onset, n - 10);
  EXPECT_FALSE(segment_after_onset(xs, xs, 60).has_value());
  // Exactly-fitting request still succeeds at the boundary.
  const auto fit = segment_after_onset(xs, xs, 10);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->size(), 10u);
}

TEST(Onset, StreamShorterThanOneWindow) {
  const std::vector<double> tiny(7, 500.0);
  EXPECT_FALSE(detect_onset(tiny).has_value());
}

TEST(SegmentAfterOnset, ReturnsRequestedLength) {
  Rng rng(6);
  const auto ref = synthetic(300, 100, 20.0, 800.0, rng);
  std::vector<double> other(300);
  for (std::size_t i = 0; i < other.size(); ++i) {
    other[i] = static_cast<double>(i);
  }
  const auto seg = segment_after_onset(ref, other, 60);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->size(), 60u);
  EXPECT_DOUBLE_EQ((*seg)[0], 100.0);  // starts at the onset index
}

TEST(SegmentAfterOnset, TooLateOnsetFails) {
  Rng rng(7);
  const auto ref = synthetic(300, 280, 20.0, 800.0, rng);
  const auto seg = segment_after_onset(ref, ref, 60);
  EXPECT_FALSE(seg.has_value());
}

TEST(SegmentAfterOnset, MismatchedSizesThrow) {
  std::vector<double> a(100, 0.0);
  std::vector<double> b(50, 0.0);
  EXPECT_THROW(segment_after_onset(a, b, 10), PreconditionError);
}

}  // namespace
}  // namespace mandipass::dsp

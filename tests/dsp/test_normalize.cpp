#include "dsp/normalize.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace mandipass::dsp {
namespace {

TEST(MinMax, MapsToUnitInterval) {
  const std::vector<double> xs{-5.0, 0.0, 5.0};
  const auto out = minmax_normalize(xs);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(MinMax, ConstantMapsToZeros) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  for (double v : minmax_normalize(xs)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(MinMax, EmptyStaysEmpty) {
  EXPECT_TRUE(minmax_normalize(std::vector<double>{}).empty());
}

TEST(MinMax, ScaleInvariantShape) {
  const std::vector<double> xs{1.0, 4.0, 2.0};
  std::vector<double> scaled{10.0, 40.0, 20.0};
  const auto a = minmax_normalize(xs);
  const auto b = minmax_normalize(scaled);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(MinMax, ShiftInvariantShape) {
  const std::vector<double> xs{1.0, 4.0, 2.0};
  std::vector<double> shifted{101.0, 104.0, 102.0};
  const auto a = minmax_normalize(xs);
  const auto b = minmax_normalize(shifted);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(ZScore, ZeroMeanUnitVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto out = zscore_normalize(xs);
  EXPECT_NEAR(mean(out), 0.0, 1e-12);
  EXPECT_NEAR(stddev(out), 1.0, 1e-12);
}

TEST(ZScore, ConstantMapsToZeros) {
  const std::vector<double> xs{2.0, 2.0};
  for (double v : zscore_normalize(xs)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

}  // namespace
}  // namespace mandipass::dsp

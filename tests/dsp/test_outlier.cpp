#include "dsp/outlier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace mandipass::dsp {
namespace {

TEST(MadDetect, FlagsObviousOutlier) {
  std::vector<double> xs(50);
  Rng rng(1);
  for (auto& x : xs) {
    x = rng.normal(0.0, 1.0);
  }
  xs[20] = 100.0;
  const auto mask = detect_outliers_mad(xs);
  EXPECT_TRUE(mask[20]);
  int flagged = 0;
  for (bool f : mask) {
    flagged += f ? 1 : 0;
  }
  EXPECT_LE(flagged, 3);  // the glitch plus at most noise-tail flags
}

TEST(MadDetect, CleanDataMostlyUnflagged) {
  std::vector<double> xs(200);
  Rng rng(2);
  for (auto& x : xs) {
    x = rng.normal(0.0, 1.0);
  }
  const auto idx = outlier_indices_mad(xs);
  // 3-sigma rule on normal data: expect well under 5%.
  EXPECT_LT(idx.size(), 10u);
}

TEST(MadDetect, ConstantSegmentNoOutliers) {
  std::vector<double> xs(20, 4.0);
  const auto mask = detect_outliers_mad(xs);
  for (bool f : mask) {
    EXPECT_FALSE(f);
  }
}

TEST(MadDetect, MostlyConstantFlagsDeviants) {
  std::vector<double> xs(20, 4.0);
  xs[5] = 9.0;
  const auto mask = detect_outliers_mad(xs);  // MAD == 0 degenerate path
  EXPECT_TRUE(mask[5]);
  EXPECT_FALSE(mask[0]);
}

TEST(MadDetect, NegativeOutlierFlagged) {
  std::vector<double> xs(50);
  Rng rng(3);
  for (auto& x : xs) {
    x = rng.normal(10.0, 1.0);
  }
  xs[7] = -90.0;
  EXPECT_TRUE(detect_outliers_mad(xs)[7]);
}

TEST(MadDetect, EmptyInput) {
  EXPECT_TRUE(detect_outliers_mad(std::vector<double>{}).empty());
}

TEST(MadDetect, BadThresholdThrows) {
  MadConfig bad;
  bad.threshold = 0.0;
  EXPECT_THROW(detect_outliers_mad(std::vector<double>{1.0}, bad), PreconditionError);
}

TEST(Replace, UsesTwoPreviousAndTwoSubsequentNormals) {
  const std::vector<double> xs{1.0, 2.0, 100.0, 3.0, 4.0};
  const std::vector<bool> mask{false, false, true, false, false};
  const auto out = replace_outliers_with_neighbor_mean(xs, mask);
  EXPECT_DOUBLE_EQ(out[2], (1.0 + 2.0 + 3.0 + 4.0) / 4.0);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[4], 4.0);
}

TEST(Replace, SkipsFlaggedNeighbours) {
  const std::vector<double> xs{1.0, 50.0, 100.0, 3.0, 4.0};
  const std::vector<bool> mask{false, true, true, false, false};
  const auto out = replace_outliers_with_neighbor_mean(xs, mask);
  // For index 2: previous normals = {1.0} (only one), next = {3.0, 4.0}.
  EXPECT_DOUBLE_EQ(out[2], (1.0 + 3.0 + 4.0) / 3.0);
}

TEST(Replace, BorderOutlier) {
  const std::vector<double> xs{100.0, 2.0, 3.0};
  const std::vector<bool> mask{true, false, false};
  const auto out = replace_outliers_with_neighbor_mean(xs, mask);
  EXPECT_DOUBLE_EQ(out[0], 2.5);  // only subsequent normals exist
}

TEST(Replace, AllFlaggedUnchanged) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<bool> mask{true, true, true};
  const auto out = replace_outliers_with_neighbor_mean(xs, mask);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], xs[i]);
  }
}

TEST(Replace, MaskSizeMismatchThrows) {
  EXPECT_THROW(
      replace_outliers_with_neighbor_mean(std::vector<double>{1.0}, std::vector<bool>{}),
      PreconditionError);
}

TEST(MadClean, EndToEndRemovesGlitch) {
  std::vector<double> xs(60);
  Rng rng(4);
  for (auto& x : xs) {
    x = rng.normal(0.0, 1.0);
  }
  xs[30] = 500.0;
  const auto cleaned = mad_clean(xs);
  EXPECT_LT(std::abs(cleaned[30]), 5.0);
}

}  // namespace
}  // namespace mandipass::dsp
